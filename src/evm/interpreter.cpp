#include "evm/interpreter.hpp"

#include <algorithm>

#include "evm/memory.hpp"
#include "evm/opcodes.hpp"
#include "evm/stack.hpp"

namespace phishinghook::evm {

const char* status_name(Status status) {
  switch (status) {
    case Status::kSuccess: return "success";
    case Status::kRevert: return "revert";
    case Status::kOutOfGas: return "out of gas";
    case Status::kStackUnderflow: return "stack underflow";
    case Status::kStackOverflow: return "stack overflow";
    case Status::kInvalidJump: return "invalid jump";
    case Status::kInvalidOpcode: return "invalid opcode";
    case Status::kStaticViolation: return "static violation";
    case Status::kCallDepthExceeded: return "call depth exceeded";
  }
  return "?";
}

namespace {

constexpr std::uint64_t kSstoreSetGas = 20000;
constexpr std::uint64_t kSstoreResetGas = 5000;
constexpr std::uint64_t kCallValueGas = 9000;
constexpr std::uint64_t kCallStipend = 2300;
constexpr std::uint64_t kNewAccountGas = 25000;
constexpr std::uint64_t kCopyWordGas = 3;
constexpr std::uint64_t kSha3WordGas = 6;
constexpr std::uint64_t kExpByteGas = 50;
constexpr std::uint64_t kLogTopicGas = 375;
constexpr std::uint64_t kLogDataGas = 8;

/// Per-frame execution state, bundled so opcode handlers stay readable.
struct Frame {
  const Message& msg;
  const Bytecode& code;
  Host& host;
  int depth;

  Stack stack;
  EvmMemory memory;
  std::vector<std::uint8_t> return_data;  // of the last nested call
  std::uint64_t gas_left;
  std::size_t pc = 0;

  explicit Frame(const Message& m, const Bytecode& c, Host& h, int d)
      : msg(m), code(c), host(h), depth(d), gas_left(m.gas) {}

  bool charge(std::uint64_t amount) {
    if (amount > gas_left) {
      gas_left = 0;
      return false;
    }
    gas_left -= amount;
    return true;
  }

  /// Charges memory expansion for [offset, offset+len) and grows memory.
  bool charge_memory(std::uint64_t offset, std::uint64_t len) {
    if (!charge(memory.grow_cost(offset, len))) return false;
    memory.grow(offset, len);
    return true;
  }
};

std::uint64_t words(std::uint64_t bytes) { return (bytes + 31) / 32; }

/// Offsets/lengths beyond 2^64 can never be paid for; treating them as "too
/// large" lets all address math proceed in 64 bits.
bool as_u64(const U256& value, std::uint64_t& out) {
  if (!value.fits_u64()) return false;
  out = value.low64();
  return true;
}

ExecutionResult finish(const Frame& frame, Status status,
                       std::vector<std::uint8_t> output = {}) {
  ExecutionResult result;
  result.status = status;
  result.gas_used = frame.msg.gas - frame.gas_left;
  result.output = std::move(output);
  return result;
}

}  // namespace

ExecutionResult Interpreter::execute(const Message& message,
                                     const Bytecode& code, Host& host,
                                     int depth) const {
  ExecutionResult result = execute_impl(message, code, host, depth);
  if (trace_ != nullptr) trace_->on_halt(depth, result.status, result.gas_used);
  return result;
}

ExecutionResult Interpreter::execute_impl(const Message& message,
                                          const Bytecode& code, Host& host,
                                          int depth) const {
  if (depth > kMaxCallDepth) {
    ExecutionResult result;
    result.status = Status::kCallDepthExceeded;
    result.gas_used = 0;
    return result;
  }

  const OpcodeTable& table = OpcodeTable::shanghai();
  Frame f(message, code, host, depth);
  const auto& bytes = code.bytes();

  while (f.pc < bytes.size()) {
    const std::uint8_t byte = bytes[f.pc];
    const OpcodeInfo* info = table.find(byte);
    if (trace_ != nullptr) {
      TraceEntry entry;
      entry.depth = depth;
      entry.pc = f.pc;
      entry.opcode = byte;
      entry.mnemonic = info != nullptr ? info->mnemonic : "INVALID";
      entry.gas_left = f.gas_left;
      entry.stack_size = f.stack.size();
      trace_->on_step(entry);
    }
    if (info == nullptr || byte == op_byte(Op::kInvalid)) {
      return finish(f, Status::kInvalidOpcode);
    }
    // Uniform stack validation from the table.
    if (f.stack.size() < info->stack_inputs) {
      return finish(f, Status::kStackUnderflow);
    }
    if (f.stack.size() - info->stack_inputs + info->stack_outputs >
        Stack::kMaxDepth) {
      return finish(f, Status::kStackOverflow);
    }
    if (!f.charge(info->base_gas)) return finish(f, Status::kOutOfGas);

    const Op op = static_cast<Op>(byte);
    std::size_t next_pc = f.pc + 1;

    // PUSHn family (data-carrying).
    if (is_push_with_data(byte)) {
      const std::size_t width = push_data_size(byte);
      const std::size_t available = std::min(width, bytes.size() - f.pc - 1);
      U256 value = U256::from_bytes_be(
          std::span<const std::uint8_t>(bytes.data() + f.pc + 1, available));
      if (available < width) {
        value = value << static_cast<unsigned>(8 * (width - available));
      }
      if (!f.stack.push(value)) return finish(f, Status::kStackOverflow);
      f.pc += 1 + width;
      continue;
    }
    // DUP / SWAP families.
    if (byte >= 0x80 && byte <= 0x8F) {
      if (!f.stack.dup(byte - 0x7F)) return finish(f, Status::kStackUnderflow);
      f.pc = next_pc;
      continue;
    }
    if (byte >= 0x90 && byte <= 0x9F) {
      if (!f.stack.swap(byte - 0x8F)) return finish(f, Status::kStackUnderflow);
      f.pc = next_pc;
      continue;
    }
    // LOG family.
    if (byte >= 0xA0 && byte <= 0xA4) {
      if (f.msg.is_static) return finish(f, Status::kStaticViolation);
      const int topic_count = byte - 0xA0;
      U256 off_w, len_w;
      (void)f.stack.pop(off_w);
      (void)f.stack.pop(len_w);
      std::uint64_t off = 0, len = 0;
      if (!as_u64(off_w, off) || !as_u64(len_w, len)) {
        return finish(f, Status::kOutOfGas);
      }
      LogEntry entry;
      entry.address = f.msg.storage_address;
      for (int t = 0; t < topic_count; ++t) {
        U256 topic;
        (void)f.stack.pop(topic);
        entry.topics.push_back(topic);
      }
      const std::uint64_t dynamic =
          kLogTopicGas * static_cast<std::uint64_t>(topic_count) +
          kLogDataGas * len;
      if (!f.charge(dynamic)) return finish(f, Status::kOutOfGas);
      if (!f.charge_memory(off, len)) return finish(f, Status::kOutOfGas);
      entry.data = f.memory.read(off, len);
      f.host.emit_log(std::move(entry));
      f.pc = next_pc;
      continue;
    }

    switch (op) {
      case Op::kStop:
        return finish(f, Status::kSuccess);

      // --- arithmetic -----------------------------------------------------
      case Op::kAdd:
      case Op::kMul:
      case Op::kSub:
      case Op::kDiv:
      case Op::kSdiv:
      case Op::kMod:
      case Op::kSmod: {
        U256 a, b;
        (void)f.stack.pop(a);
        (void)f.stack.pop(b);
        U256 r;
        switch (op) {
          case Op::kAdd: r = a + b; break;
          case Op::kMul: r = a * b; break;
          case Op::kSub: r = a - b; break;
          case Op::kDiv: r = a / b; break;
          case Op::kSdiv: r = U256::sdiv(a, b); break;
          case Op::kMod: r = a % b; break;
          default: r = U256::smod(a, b); break;
        }
        (void)f.stack.push(r);
        break;
      }
      case Op::kAddmod:
      case Op::kMulmod: {
        U256 a, b, m;
        (void)f.stack.pop(a);
        (void)f.stack.pop(b);
        (void)f.stack.pop(m);
        (void)f.stack.push(op == Op::kAddmod ? U256::addmod(a, b, m)
                                             : U256::mulmod(a, b, m));
        break;
      }
      case Op::kExp: {
        U256 base, exponent;
        (void)f.stack.pop(base);
        (void)f.stack.pop(exponent);
        if (!f.charge(kExpByteGas * exponent.byte_length())) {
          return finish(f, Status::kOutOfGas);
        }
        (void)f.stack.push(U256::exp(base, exponent));
        break;
      }
      case Op::kSignextend: {
        U256 index, value;
        (void)f.stack.pop(index);
        (void)f.stack.pop(value);
        (void)f.stack.push(U256::signextend(index, value));
        break;
      }

      // --- comparison / bitwise -------------------------------------------
      case Op::kLt:
      case Op::kGt:
      case Op::kSlt:
      case Op::kSgt:
      case Op::kEq: {
        U256 a, b;
        (void)f.stack.pop(a);
        (void)f.stack.pop(b);
        bool r = false;
        switch (op) {
          case Op::kLt: r = a < b; break;
          case Op::kGt: r = a > b; break;
          case Op::kSlt: r = U256::slt(a, b); break;
          case Op::kSgt: r = U256::sgt(a, b); break;
          default: r = a == b; break;
        }
        (void)f.stack.push(U256(r ? 1 : 0));
        break;
      }
      case Op::kIszero: {
        U256 a;
        (void)f.stack.pop(a);
        (void)f.stack.push(U256(a.is_zero() ? 1 : 0));
        break;
      }
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor: {
        U256 a, b;
        (void)f.stack.pop(a);
        (void)f.stack.pop(b);
        (void)f.stack.push(op == Op::kAnd ? (a & b)
                                          : op == Op::kOr ? (a | b) : (a ^ b));
        break;
      }
      case Op::kNot: {
        U256 a;
        (void)f.stack.pop(a);
        (void)f.stack.push(~a);
        break;
      }
      case Op::kByte: {
        U256 index, value;
        (void)f.stack.pop(index);
        (void)f.stack.pop(value);
        const std::uint8_t b =
            index.fits_u64() && index.low64() < 32
                ? value.byte_msb(static_cast<unsigned>(index.low64()))
                : 0;
        (void)f.stack.push(U256(b));
        break;
      }
      case Op::kShl:
      case Op::kShr: {
        U256 shift, value;
        (void)f.stack.pop(shift);
        (void)f.stack.pop(value);
        U256 r;
        if (shift.fits_u64() && shift.low64() < 256) {
          const unsigned s = static_cast<unsigned>(shift.low64());
          r = (op == Op::kShl) ? (value << s) : (value >> s);
        }
        (void)f.stack.push(r);
        break;
      }
      case Op::kSar: {
        U256 shift, value;
        (void)f.stack.pop(shift);
        (void)f.stack.pop(value);
        (void)f.stack.push(U256::sar(value, shift));
        break;
      }

      // --- hashing ----------------------------------------------------------
      case Op::kSha3: {
        U256 off_w, len_w;
        (void)f.stack.pop(off_w);
        (void)f.stack.pop(len_w);
        std::uint64_t off = 0, len = 0;
        if (!as_u64(off_w, off) || !as_u64(len_w, len)) {
          return finish(f, Status::kOutOfGas);
        }
        if (!f.charge(kSha3WordGas * words(len))) {
          return finish(f, Status::kOutOfGas);
        }
        if (!f.charge_memory(off, len)) return finish(f, Status::kOutOfGas);
        const auto data = f.memory.read(off, len);
        (void)f.stack.push(U256::from_bytes_be(keccak256(data)));
        break;
      }

      // --- environment -----------------------------------------------------
      case Op::kAddress:
        (void)f.stack.push(f.msg.storage_address.to_word());
        break;
      case Op::kBalance: {
        U256 addr_w;
        (void)f.stack.pop(addr_w);
        (void)f.stack.push(f.host.get_balance(Address::from_word(addr_w)));
        break;
      }
      case Op::kOrigin:
        (void)f.stack.push(f.msg.origin.to_word());
        break;
      case Op::kCaller:
        (void)f.stack.push(f.msg.caller.to_word());
        break;
      case Op::kCallvalue:
        (void)f.stack.push(f.msg.value);
        break;
      case Op::kCalldataload: {
        U256 off_w;
        (void)f.stack.pop(off_w);
        U256 value;
        std::uint64_t off = 0;
        if (as_u64(off_w, off) && off < f.msg.data.size()) {
          const std::size_t available =
              std::min<std::size_t>(32, f.msg.data.size() - off);
          value = U256::from_bytes_be(
              std::span<const std::uint8_t>(f.msg.data.data() + off, available));
          value = value << static_cast<unsigned>(8 * (32 - available));
        }
        (void)f.stack.push(value);
        break;
      }
      case Op::kCalldatasize:
        (void)f.stack.push(U256(f.msg.data.size()));
        break;
      case Op::kCodesize:
        (void)f.stack.push(U256(bytes.size()));
        break;
      case Op::kCalldatacopy:
      case Op::kCodecopy:
      case Op::kReturndatacopy: {
        U256 dst_w, src_w, len_w;
        (void)f.stack.pop(dst_w);
        (void)f.stack.pop(src_w);
        (void)f.stack.pop(len_w);
        std::uint64_t dst = 0, src = 0, len = 0;
        if (!as_u64(dst_w, dst) || !as_u64(len_w, len)) {
          return finish(f, Status::kOutOfGas);
        }
        const bool src_ok = as_u64(src_w, src);
        if (!f.charge(kCopyWordGas * words(len))) {
          return finish(f, Status::kOutOfGas);
        }
        if (!f.charge_memory(dst, len)) return finish(f, Status::kOutOfGas);
        const std::vector<std::uint8_t>* source = nullptr;
        switch (op) {
          case Op::kCalldatacopy: source = &f.msg.data; break;
          case Op::kCodecopy: source = &bytes; break;
          default: source = &f.return_data; break;
        }
        std::span<const std::uint8_t> window;
        if (src_ok && src < source->size()) {
          window = std::span<const std::uint8_t>(source->data() + src,
                                                 source->size() - src);
        }
        f.memory.store_span(dst, window, len);
        break;
      }
      case Op::kGasprice:
        (void)f.stack.push(U256(f.msg.gas_price));
        break;
      case Op::kExtcodesize: {
        U256 addr_w;
        (void)f.stack.pop(addr_w);
        (void)f.stack.push(
            U256(f.host.get_code(Address::from_word(addr_w)).size()));
        break;
      }
      case Op::kExtcodecopy: {
        U256 addr_w, dst_w, src_w, len_w;
        (void)f.stack.pop(addr_w);
        (void)f.stack.pop(dst_w);
        (void)f.stack.pop(src_w);
        (void)f.stack.pop(len_w);
        std::uint64_t dst = 0, src = 0, len = 0;
        if (!as_u64(dst_w, dst) || !as_u64(len_w, len)) {
          return finish(f, Status::kOutOfGas);
        }
        const bool src_ok = as_u64(src_w, src);
        if (!f.charge(kCopyWordGas * words(len))) {
          return finish(f, Status::kOutOfGas);
        }
        if (!f.charge_memory(dst, len)) return finish(f, Status::kOutOfGas);
        const Bytecode ext = f.host.get_code(Address::from_word(addr_w));
        std::span<const std::uint8_t> window;
        if (src_ok && src < ext.size()) {
          window = std::span<const std::uint8_t>(ext.bytes().data() + src,
                                                 ext.size() - src);
        }
        f.memory.store_span(dst, window, len);
        break;
      }
      case Op::kReturndatasize:
        (void)f.stack.push(U256(f.return_data.size()));
        break;
      case Op::kExtcodehash: {
        U256 addr_w;
        (void)f.stack.pop(addr_w);
        const Address addr = Address::from_word(addr_w);
        if (!f.host.account_exists(addr)) {
          (void)f.stack.push(U256());
        } else {
          (void)f.stack.push(U256::from_bytes_be(f.host.get_code(addr).code_hash()));
        }
        break;
      }

      // --- block -------------------------------------------------------------
      case Op::kBlockhash: {
        U256 number_w;
        (void)f.stack.pop(number_w);
        U256 value;
        std::uint64_t number = 0;
        if (as_u64(number_w, number) && number < block_.number) {
          value = U256::from_bytes_be(f.host.block_hash(number));
        }
        (void)f.stack.push(value);
        break;
      }
      case Op::kCoinbase:
        (void)f.stack.push(block_.coinbase.to_word());
        break;
      case Op::kTimestamp:
        (void)f.stack.push(U256(block_.timestamp));
        break;
      case Op::kNumber:
        (void)f.stack.push(U256(block_.number));
        break;
      case Op::kPrevrandao:
        (void)f.stack.push(block_.prevrandao);
        break;
      case Op::kGaslimit:
        (void)f.stack.push(U256(block_.gas_limit));
        break;
      case Op::kChainid:
        (void)f.stack.push(U256(block_.chain_id));
        break;
      case Op::kSelfbalance:
        (void)f.stack.push(f.host.get_balance(f.msg.storage_address));
        break;
      case Op::kBasefee:
        (void)f.stack.push(U256(block_.base_fee));
        break;

      // --- stack / memory / storage / flow ------------------------------------
      case Op::kPop: {
        U256 ignored;
        (void)f.stack.pop(ignored);
        break;
      }
      case Op::kMload: {
        U256 off_w;
        (void)f.stack.pop(off_w);
        std::uint64_t off = 0;
        if (!as_u64(off_w, off)) return finish(f, Status::kOutOfGas);
        if (!f.charge(f.memory.grow_cost(off, 32))) {
          return finish(f, Status::kOutOfGas);
        }
        (void)f.stack.push(f.memory.load_word(off));
        break;
      }
      case Op::kMstore:
      case Op::kMstore8: {
        U256 off_w, value;
        (void)f.stack.pop(off_w);
        (void)f.stack.pop(value);
        std::uint64_t off = 0;
        if (!as_u64(off_w, off)) return finish(f, Status::kOutOfGas);
        const std::uint64_t width = (op == Op::kMstore) ? 32 : 1;
        if (!f.charge_memory(off, width)) return finish(f, Status::kOutOfGas);
        if (op == Op::kMstore) {
          f.memory.store_word(off, value);
        } else {
          f.memory.store_byte(off, static_cast<std::uint8_t>(value.low64()));
        }
        break;
      }
      case Op::kSload: {
        U256 key;
        (void)f.stack.pop(key);
        (void)f.stack.push(f.host.sload(f.msg.storage_address, key));
        break;
      }
      case Op::kSstore: {
        if (f.msg.is_static) return finish(f, Status::kStaticViolation);
        U256 key, value;
        (void)f.stack.pop(key);
        (void)f.stack.pop(value);
        const U256 current = f.host.sload(f.msg.storage_address, key);
        const std::uint64_t cost =
            (current.is_zero() && !value.is_zero()) ? kSstoreSetGas
                                                    : kSstoreResetGas;
        if (!f.charge(cost)) return finish(f, Status::kOutOfGas);
        f.host.sstore(f.msg.storage_address, key, value);
        break;
      }
      case Op::kJump: {
        U256 dest_w;
        (void)f.stack.pop(dest_w);
        if (!dest_w.fits_u64() ||
            !code.is_valid_jump_dest(static_cast<std::size_t>(dest_w.low64()))) {
          return finish(f, Status::kInvalidJump);
        }
        next_pc = static_cast<std::size_t>(dest_w.low64());
        break;
      }
      case Op::kJumpi: {
        U256 dest_w, condition;
        (void)f.stack.pop(dest_w);
        (void)f.stack.pop(condition);
        if (!condition.is_zero()) {
          if (!dest_w.fits_u64() ||
              !code.is_valid_jump_dest(
                  static_cast<std::size_t>(dest_w.low64()))) {
            return finish(f, Status::kInvalidJump);
          }
          next_pc = static_cast<std::size_t>(dest_w.low64());
        }
        break;
      }
      case Op::kPc:
        (void)f.stack.push(U256(f.pc));
        break;
      case Op::kMsize:
        (void)f.stack.push(U256(f.memory.size()));
        break;
      case Op::kGas:
        (void)f.stack.push(U256(f.gas_left));
        break;
      case Op::kJumpdest:
        break;
      case Op::kPush0:
        (void)f.stack.push(U256());
        break;

      // --- system ----------------------------------------------------------
      case Op::kCreate:
      case Op::kCreate2: {
        if (f.msg.is_static) return finish(f, Status::kStaticViolation);
        U256 value, off_w, len_w, salt;
        (void)f.stack.pop(value);
        (void)f.stack.pop(off_w);
        (void)f.stack.pop(len_w);
        if (op == Op::kCreate2) (void)f.stack.pop(salt);
        std::uint64_t off = 0, len = 0;
        if (!as_u64(off_w, off) || !as_u64(len_w, len)) {
          return finish(f, Status::kOutOfGas);
        }
        if (!f.charge_memory(off, len)) return finish(f, Status::kOutOfGas);
        if (op == Op::kCreate2 && !f.charge(kSha3WordGas * words(len))) {
          return finish(f, Status::kOutOfGas);
        }
        const auto init_code = f.memory.read(off, len);
        const std::uint64_t forwarded = f.gas_left - f.gas_left / 64;
        ExecutionResult child;
        const std::optional<Address> created = f.host.create(
            f.msg.storage_address, value, init_code,
            op == Op::kCreate2 ? std::optional<U256>(salt) : std::nullopt,
            f.depth + 1, forwarded, child);
        f.gas_left -= std::min(child.gas_used, forwarded);
        f.return_data = child.status == Status::kRevert ? child.output
                                                        : std::vector<std::uint8_t>{};
        (void)f.stack.push(created.has_value() ? created->to_word() : U256());
        break;
      }
      case Op::kCall:
      case Op::kCallcode:
      case Op::kDelegatecall:
      case Op::kStaticcall: {
        U256 gas_w, addr_w, value;
        (void)f.stack.pop(gas_w);
        (void)f.stack.pop(addr_w);
        if (op == Op::kCall || op == Op::kCallcode) {
          (void)f.stack.pop(value);
        }
        U256 in_off_w, in_len_w, out_off_w, out_len_w;
        (void)f.stack.pop(in_off_w);
        (void)f.stack.pop(in_len_w);
        (void)f.stack.pop(out_off_w);
        (void)f.stack.pop(out_len_w);
        std::uint64_t in_off = 0, in_len = 0, out_off = 0, out_len = 0;
        if (!as_u64(in_off_w, in_off) || !as_u64(in_len_w, in_len) ||
            !as_u64(out_off_w, out_off) || !as_u64(out_len_w, out_len)) {
          return finish(f, Status::kOutOfGas);
        }
        if (op == Op::kCall && f.msg.is_static && !value.is_zero()) {
          return finish(f, Status::kStaticViolation);
        }
        if (!f.charge_memory(in_off, in_len)) return finish(f, Status::kOutOfGas);
        if (!f.charge_memory(out_off, out_len)) {
          return finish(f, Status::kOutOfGas);
        }
        const Address target = Address::from_word(addr_w);
        std::uint64_t extra = 0;
        if ((op == Op::kCall || op == Op::kCallcode) && !value.is_zero()) {
          extra += kCallValueGas;
          if (op == Op::kCall && !f.host.account_exists(target)) {
            extra += kNewAccountGas;
          }
        }
        if (!f.charge(extra)) return finish(f, Status::kOutOfGas);

        const std::uint64_t max_forward = f.gas_left - f.gas_left / 64;
        std::uint64_t requested = max_forward;
        if (gas_w.fits_u64()) requested = std::min(gas_w.low64(), max_forward);
        std::uint64_t child_gas = requested;
        if (!value.is_zero()) child_gas += kCallStipend;

        Message child_msg;
        child_msg.origin = f.msg.origin;
        child_msg.gas = child_gas;
        child_msg.gas_price = f.msg.gas_price;
        child_msg.data = f.memory.read(in_off, in_len);
        CallKind kind = CallKind::kCall;
        switch (op) {
          case Op::kCall:
            kind = CallKind::kCall;
            child_msg.caller = f.msg.storage_address;
            child_msg.code_address = target;
            child_msg.storage_address = target;
            child_msg.value = value;
            child_msg.is_static = f.msg.is_static;
            break;
          case Op::kCallcode:
            kind = CallKind::kCallCode;
            child_msg.caller = f.msg.storage_address;
            child_msg.code_address = target;
            child_msg.storage_address = f.msg.storage_address;
            child_msg.value = value;
            child_msg.is_static = f.msg.is_static;
            break;
          case Op::kDelegatecall:
            kind = CallKind::kDelegateCall;
            child_msg.caller = f.msg.caller;
            child_msg.code_address = target;
            child_msg.storage_address = f.msg.storage_address;
            child_msg.value = f.msg.value;
            child_msg.is_static = f.msg.is_static;
            break;
          default:
            kind = CallKind::kStaticCall;
            child_msg.caller = f.msg.storage_address;
            child_msg.code_address = target;
            child_msg.storage_address = target;
            child_msg.value = U256();
            child_msg.is_static = true;
            break;
        }

        const ExecutionResult child =
            f.host.call(child_msg, kind, f.depth + 1);
        const std::uint64_t billable =
            std::min(child.gas_used, requested);  // the stipend is free
        f.gas_left -= std::min(billable, f.gas_left);
        f.return_data = child.output;
        f.memory.store_span(out_off, child.output,
                            std::min<std::uint64_t>(out_len, child.output.size()));
        (void)f.stack.push(U256(child.ok() ? 1 : 0));
        break;
      }
      case Op::kReturn:
      case Op::kRevert: {
        U256 off_w, len_w;
        (void)f.stack.pop(off_w);
        (void)f.stack.pop(len_w);
        std::uint64_t off = 0, len = 0;
        if (!as_u64(off_w, off) || !as_u64(len_w, len)) {
          return finish(f, Status::kOutOfGas);
        }
        if (!f.charge_memory(off, len)) return finish(f, Status::kOutOfGas);
        return finish(f, op == Op::kReturn ? Status::kSuccess : Status::kRevert,
                      f.memory.read(off, len));
      }
      case Op::kSelfdestruct: {
        if (f.msg.is_static) return finish(f, Status::kStaticViolation);
        U256 beneficiary_w;
        (void)f.stack.pop(beneficiary_w);
        f.host.selfdestruct(f.msg.storage_address,
                            Address::from_word(beneficiary_w));
        return finish(f, Status::kSuccess);
      }

      default:
        // All defined opcodes are handled above; reaching here would mean the
        // table and the interpreter disagree.
        return finish(f, Status::kInvalidOpcode);
    }

    f.pc = next_pc;
  }

  // Running off the end of code is an implicit STOP.
  return finish(f, Status::kSuccess);
}

}  // namespace phishinghook::evm
