#include "evm/trace.hpp"

#include "common/csv.hpp"

namespace phishinghook::evm {

std::size_t TraceRecorder::count(std::string_view mnemonic) const {
  std::size_t total = 0;
  for (const TraceEntry& entry : entries_) {
    if (entry.mnemonic == mnemonic) ++total;
  }
  return total;
}

std::string TraceRecorder::to_csv() const {
  common::CsvWriter writer;
  writer.write_row({"depth", "pc", "opcode", "mnemonic", "gas_left",
                    "stack_size"});
  for (const TraceEntry& entry : entries_) {
    writer.write_row({std::to_string(entry.depth), std::to_string(entry.pc),
                      std::to_string(entry.opcode),
                      std::string(entry.mnemonic),
                      std::to_string(entry.gas_left),
                      std::to_string(entry.stack_size)});
  }
  return writer.str();
}

}  // namespace phishinghook::evm
