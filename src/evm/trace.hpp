// Execution tracing: a structured per-instruction event stream from the
// interpreter (the `debug_traceTransaction` of this simulator).
//
// Attach a TraceSink to an Interpreter (and/or to chain::State, which
// propagates it into nested call frames) to observe every executed
// instruction with its pc, gas and stack depth — used for debugging
// synthetic templates and for the forensic walkthroughs in the examples.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace phishinghook::evm {

enum class Status;  // host.hpp

/// One executed instruction.
struct TraceEntry {
  int depth = 0;               ///< call frame depth (0 = top level)
  std::size_t pc = 0;
  std::uint8_t opcode = 0;
  std::string_view mnemonic;   ///< from the opcode table ("UNKNOWN_.." too)
  std::uint64_t gas_left = 0;  ///< before charging this instruction
  std::size_t stack_size = 0;  ///< before executing this instruction
};

/// Observer interface. Implementations must be cheap: on_step fires for
/// every instruction executed.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_step(const TraceEntry& entry) = 0;
  /// A frame finished (normally or exceptionally).
  virtual void on_halt(int depth, Status status, std::uint64_t gas_used) {
    (void)depth;
    (void)status;
    (void)gas_used;
  }
};

/// Records the full trace in memory; CSV export for offline inspection.
class TraceRecorder final : public TraceSink {
 public:
  void on_step(const TraceEntry& entry) override { entries_.push_back(entry); }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// Count of executed instructions with the given mnemonic.
  std::size_t count(std::string_view mnemonic) const;

  /// depth,pc,opcode,mnemonic,gas_left,stack_size rows.
  std::string to_csv() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace phishinghook::evm
