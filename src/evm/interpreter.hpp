// The EVM interpreter: a 256-bit stack machine executing Shanghai opcodes.
//
// Implements the full Shanghai instruction set over the Host interface, with
// gas accounting that covers the dominant dynamic components (memory
// expansion, word-granular copy costs, EXP byte cost, LOG data, SSTORE
// set/reset, call value surcharges and the 63/64 forwarding rule).
//
// Documented simplifications vs mainnet (this is a research simulator; the
// PhishingHook pipeline only needs structurally-correct execution):
//  * no EIP-2929 cold/warm access lists — account/storage accesses always
//    charge the table's flat cost;
//  * no SSTORE/SELFDESTRUCT gas refunds;
//  * BLOCKHASH answers for any block number the host knows about.
#pragma once

#include "evm/bytecode.hpp"
#include "evm/host.hpp"
#include "evm/trace.hpp"

namespace phishinghook::evm {

class Interpreter {
 public:
  static constexpr int kMaxCallDepth = 1024;

  explicit Interpreter(BlockContext block) : block_(block) {}

  /// Runs `code` in the context of `message`. `depth` is this frame's call
  /// depth (0 for a top-level transaction).
  ExecutionResult execute(const Message& message, const Bytecode& code,
                          Host& host, int depth = 0) const;

  /// Attaches a per-instruction observer (nullptr detaches). The sink must
  /// outlive every execute() call. chain::State propagates its sink into
  /// nested call frames.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  const BlockContext& block() const { return block_; }

 private:
  ExecutionResult execute_impl(const Message& message, const Bytecode& code,
                               Host& host, int depth) const;

  BlockContext block_;
  TraceSink* trace_ = nullptr;
};

}  // namespace phishinghook::evm
