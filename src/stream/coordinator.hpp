// StreamCoordinator: wires miner → follower → load generator → engine
// into a running pipeline with a graceful start/drain lifecycle.
//
// Four single-purpose threads, hand-offs over bounded queues:
//
//   miner      keeps LiveChain producing blocks (paced to blocks_per_s)
//   follower   tails the chain via BlockFollower, pushes fresh addresses
//   generator  open-loop arrivals (LoadGenerator schedule): each arrival
//              re-queries a known address or pops a fresh one, submits to
//              the ScoringEngine, pushes the future
//   collector  resolves futures, tallies completed/failed/shed
//
// The drain protocol runs strictly upstream-to-downstream: stop the miner,
// let the follower surface the last blocks and close the address queue,
// let the generator flush every remaining fresh address (so after a full
// drain fresh_submits == follower.forwarded — an asserted invariant), then
// close the future queue and let the collector finish. No stage is ever
// cancelled with work still owed to it; the accounting identity
// submitted == completed + failed + shed holds at the end of every run.
//
// Reproducibility contract (tested): chain content, dedup counts, and —
// when max_requests bounds the run — the submitted count are pure
// functions of the seeds. Timing-coupled splits (requery vs fresh, shed
// counts, lag highs) legitimately vary run to run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request_context.hpp"
#include "obs/window.hpp"
#include "serve/scoring_engine.hpp"
#include "stream/block_follower.hpp"
#include "stream/bounded_queue.hpp"
#include "stream/live_chain.hpp"
#include "stream/load_generator.hpp"

namespace phishinghook::stream {

struct StreamConfig {
  FollowerConfig follower;
  ArrivalConfig arrivals;
  /// Chain production rate in paced mode (mainnet ~0.083; dial up to
  /// compress hours of chain time into seconds of wall clock).
  double blocks_per_s = 50.0;
  /// Follower sleep between empty polls.
  std::uint64_t poll_interval_us = 2000;
  /// Paced mode sleeps the miner/generator onto their virtual-time
  /// schedules (honest rates, wall-clock runtime). Unpaced free-runs —
  /// for tests and smoke benches where only the accounting matters.
  bool paced = true;
  std::size_t address_queue_capacity = 4096;
  std::size_t future_queue_capacity = 8192;
  /// Stop mining after this many blocks (0 = mine until drain).
  std::uint64_t max_blocks = 0;
  /// Stop generating after this many submissions (0 = until drain).
  std::uint64_t max_requests = 0;
  /// Sliding window over collector outcomes (rate, error ratio,
  /// latency quantiles for the last window_seconds).
  obs::WindowConfig window;
  /// SLO targets evaluated over that window. "Error" here means a
  /// submission that did not produce a score: extract/model failures
  /// *and* shed requests both burn the budget.
  obs::SloConfig slo;
};

/// End-of-run summary. All fields are totals for this coordinator's run
/// (engine-shared state like the score cache is *not* reset; cache hits
/// here count this run's results only).
struct StreamReport {
  double elapsed_s = 0.0;
  synth::MinerStats miner;
  FollowerStats follower;

  std::uint64_t submitted = 0;
  std::uint64_t fresh_submits = 0;    ///< popped from the follower feed
  std::uint64_t requery_submits = 0;  ///< re-query of a known address
  std::uint64_t starved_arrivals = 0; ///< arrival with nothing to query
  std::uint64_t burst_arrivals = 0;   ///< submissions inside burst windows

  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t cache_hit_results = 0;

  double sustained_rows_per_s = 0.0;  ///< completed / elapsed_s
  std::uint64_t ingest_lag_blocks = 0;      ///< at the follower's last poll
  std::uint64_t max_ingest_lag_blocks = 0;

  /// Windowed view at report time (idle decay applies: after a long
  /// drain the window may already be empty) plus the SLO verdict on it.
  obs::SlidingWindowAggregator::Snapshot window;
  double error_burn_rate = 0.0;
  double shed_pressure = 0.0;

  /// The conservation law the engine + pipeline jointly guarantee once
  /// drained: every submission resolved exactly one way.
  bool accounting_ok() const {
    return submitted == completed + failed + shed;
  }
};

class StreamCoordinator {
 public:
  /// Borrows everything; `chain` and `engine` must outlive the
  /// coordinator. `follower_view` overrides the explorer the follower
  /// tails (defaults to chain.explorer()) — pass a chaos decorator
  /// wrapped around chain.explorer() to fault-inject the ingest path.
  StreamCoordinator(LiveChain& chain, serve::ScoringEngine& engine,
                    StreamConfig config = {},
                    const chain::Explorer* follower_view = nullptr);

  /// Drains if still running.
  ~StreamCoordinator();

  StreamCoordinator(const StreamCoordinator&) = delete;
  StreamCoordinator& operator=(const StreamCoordinator&) = delete;

  /// Launches the four pipeline threads. Throws StateError on re-start.
  void start();

  /// True once the generator and collector finished on their own
  /// (max_blocks/max_requests reached and every future resolved). Poll
  /// this to detect natural completion, then drain() to join.
  bool finished() const;

  /// Graceful stop: miner → follower → generator flush → collector, in
  /// order, joining each. Idempotent; also run by the destructor.
  void drain();

  /// Valid after drain().
  StreamReport report() const;

  /// Per-stage stream_* counters/gauges (live during the run).
  obs::MetricsRegistry& registry() { return metrics_.registry; }

  /// Windowed aggregation over collector outcomes (live during the run).
  const obs::SlidingWindowAggregator& window() const { return window_; }

  /// Evaluates the SLO over the current window and publishes the result
  /// into registry() (stream_window_* gauges, stream_error_burn_rate,
  /// stream_shed_pressure, edge-triggered stream_slo_breach_total).
  /// Thread-safe; wire it as a scrape-server pre-scrape hook or call it
  /// from a control loop that wants the shed-pressure signal.
  obs::SloEvaluator::Evaluation evaluate_slo();

  /// Pipeline drain/queue state as a JSON object — the /healthz body.
  std::string health_json() const;

 private:
  struct StreamMetrics {
    obs::MetricsRegistry registry;
    obs::Counter submitted = registry.counter("stream_requests_submitted");
    obs::Counter fresh = registry.counter("stream_fresh_submits");
    obs::Counter requery = registry.counter("stream_requery_submits");
    obs::Counter starved = registry.counter("stream_starved_arrivals");
    obs::Counter burst = registry.counter("stream_burst_arrivals");
    obs::Counter completed = registry.counter("stream_requests_completed");
    obs::Counter failed = registry.counter("stream_requests_failed");
    obs::Counter shed = registry.counter("stream_requests_shed");
    obs::Counter cache_hits = registry.counter("stream_cache_hit_results");
    obs::Gauge blocks_mined = registry.gauge("stream_blocks_mined");
    obs::Gauge deployments_seen = registry.gauge("stream_deployments_seen");
    obs::Gauge forwarded = registry.gauge("stream_forwarded_total");
    obs::Gauge dedup_hit_rate = registry.gauge("stream_dedup_hit_rate");
    obs::Gauge ingest_lag = registry.gauge("stream_ingest_lag_blocks");
    obs::Gauge max_ingest_lag =
        registry.gauge("stream_max_ingest_lag_blocks");
    /// Queue-wait between follower push and generator pop — the stream
    /// pipeline's own stage-attribution histogram (the engine covers its
    /// queue/extract/predict stages in serve_stage_*).
    obs::LatencyHistogram& addr_queue_wait = registry.histogram(
        "stream_stage_wait_us", obs::label("stage", "addr_queue"));
  };

  /// A fresh address plus the causal identity minted at ingest; travels
  /// by value through the address queue into the engine.
  struct StampedAddress {
    evm::Address address;
    obs::RequestContext ctx;
  };

  void miner_loop();
  void follower_loop();
  void generator_loop();
  void collector_loop();
  /// One submission from the generator thread; false when the engine
  /// stopped accepting work or the future queue closed. `ctx` continues a
  /// lane minted at ingest (fresh pops); requeries pass none and the
  /// engine mints at admission.
  bool submit_one(const evm::Address& address, bool fresh,
                  obs::RequestContext ctx = {});
  /// Records how long a popped fresh address sat in the address queue
  /// (histogram + "req.addr_queue" stage slice + flow step).
  void note_addr_queue_wait(StampedAddress& stamped);

  LiveChain* chain_;
  serve::ScoringEngine* engine_;
  StreamConfig config_;
  BlockFollower follower_;
  LoadGenerator generator_;
  StreamMetrics metrics_;

  BoundedQueue<StampedAddress> addresses_;
  BoundedQueue<std::future<serve::ScoreResult>> futures_;

  obs::SlidingWindowAggregator window_;
  obs::SloEvaluator slo_;      ///< evaluates window_; guarded by slo_mutex_
  std::mutex slo_mutex_;

  std::chrono::steady_clock::time_point epoch_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> stop_mining_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> miner_done_{false};
  std::atomic<bool> generator_done_{false};
  std::atomic<bool> collector_done_{false};

  /// Generator-thread state (touched only there, read after join).
  std::vector<evm::Address> known_;
  std::uint64_t submitted_ = 0;

  double elapsed_s_ = 0.0;

  std::thread miner_thread_;
  std::thread follower_thread_;
  std::thread generator_thread_;
  std::thread collector_thread_;
};

}  // namespace phishinghook::stream
