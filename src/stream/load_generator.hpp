// Open-loop arrival model for the streaming load generator.
//
// "Open-loop" is the defining property: arrivals are a function of time
// and the seed only, never of how fast the engine is answering. A closed
// loop (submit, wait, submit) self-throttles and can never observe shed —
// the paper's serving claims need the opposite, a client population that
// keeps querying at its own pace while the engine sinks or swims.
//
// Arrivals are a Poisson process with a piecewise-constant rate: a steady
// base rate, optionally interrupted by periodic "mempool burst" windows at
// a much higher rate (the thundering-herd shape of a hyped deployment hit
// by every wallet's token-screening backend at once). Inter-arrival gaps
// are exponential at the rate in effect when the gap is drawn, so the
// whole schedule is a pure function of (seed, config) — two same-seed
// generators produce bit-identical schedules, which the reproducibility
// tests assert.
//
// The request mix is two-sided, matching real screening traffic: a
// `requery_fraction` of arrivals re-query an already-seen contract
// (keeping the score cache under realistic pressure) and the rest demand
// the newest unscored deployment.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace phishinghook::stream {

struct ArrivalConfig {
  /// Base arrival rate, requests per second of virtual time. Must be > 0.
  double rate_per_s = 2000.0;
  /// Rate inside burst windows; 0 disables bursts entirely.
  double burst_rate_per_s = 0.0;
  /// Burst window period and width (a burst starts every `burst_every_s`
  /// and lasts `burst_duration_s`).
  double burst_every_s = 0.5;
  double burst_duration_s = 0.05;
  std::uint64_t seed = 99;
  /// Fraction of arrivals that re-query a previously surfaced address
  /// instead of asking for a fresh deployment.
  double requery_fraction = 0.5;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(ArrivalConfig config = {});

  /// Steady Poisson traffic at the base rate — the "quiet day" scenario.
  static ArrivalConfig steady_scenario();

  /// Base-rate traffic punctuated by short mempool bursts at many times
  /// the base rate — the scenario that forces shed/backpressure to act.
  static ArrivalConfig mempool_burst_scenario();

  /// Advances virtual time to the next arrival and returns the gap just
  /// consumed, in seconds. Pure function of (seed, call count).
  double next_arrival();

  /// Virtual-time position of the most recent arrival, seconds since the
  /// schedule's start. The pacing loop sleeps until wall-clock epoch +
  /// this value — if it can't keep up, arrivals bunch (open loop).
  double virtual_time_s() const { return virtual_time_s_; }

  /// Whether the most recent arrival fell inside a burst window.
  bool last_in_burst() const { return last_in_burst_; }

  bool in_burst(double t) const;
  double rate_at(double t) const;

  /// Draws the requery-vs-fresh coin for the current arrival.
  bool draw_requery();

  /// Uniform index into an `n`-element known-address pool. n must be > 0.
  std::size_t draw_index(std::size_t n);

  std::uint64_t arrivals() const { return arrivals_; }
  const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  common::Rng rng_;
  double virtual_time_s_ = 0.0;
  bool last_in_burst_ = false;
  std::uint64_t arrivals_ = 0;
};

}  // namespace phishinghook::stream
