// BlockFollower: incremental chain tail with code-hash deduplication.
//
// Tails an Explorer from a cursor block, surfacing each new deployment
// exactly once. Every poll snapshots (new records, head block) atomically
// via Explorer::crawl_after, so "how far behind the head am I" — the
// ingest-lag metric — is measured against the head the records came from,
// not a head that moved mid-read.
//
// Dedup is by *fetched* Keccak code hash, not the journal's recorded one:
// the follower pulls bytecode through the explorer's (possibly
// fault-injected) read path exactly as a production follower would hit a
// node, so chaos decorators exercise the streaming path for free. By
// default duplicates are still forwarded — dedup here is accounting (the
// hit rate the paper's Fig. 2 duplication predicts), while the engine's
// sharded score cache does the actual work of making them cheap.
// `drop_duplicates` turns the follower into a hard unique-code filter.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "chain/explorer.hpp"
#include "evm/keccak.hpp"

namespace phishinghook::stream {

struct FollowerConfig {
  /// Suppress deployments whose runtime hash was already seen instead of
  /// forwarding them. Off by default: duplicate traffic is exactly what
  /// the score cache is for, and dropping it would hide that behaviour.
  bool drop_duplicates = false;
  /// First block NOT yet ingested. The default sentinel means "attach at
  /// the current head" (tail only new deployments); pass 0 to ingest the
  /// whole chain from genesis.
  std::uint64_t start_block = kAttachAtHead;

  static constexpr std::uint64_t kAttachAtHead = ~0ull;
};

struct FollowerStats {
  std::uint64_t polls = 0;
  std::uint64_t deployments_seen = 0;
  std::uint64_t dedup_unique = 0;  ///< first sighting of a code hash
  std::uint64_t dedup_hits = 0;    ///< repeat sightings
  std::uint64_t code_faults = 0;   ///< TransientError from get_code
  std::uint64_t empty_code = 0;    ///< deployments with no runtime code
  std::uint64_t forwarded = 0;     ///< records returned to the caller
  std::uint64_t dropped = 0;       ///< suppressed by drop_duplicates
  std::uint64_t last_lag_blocks = 0;
  std::uint64_t max_lag_blocks = 0;

  double dedup_hit_rate() const {
    const std::uint64_t total = dedup_unique + dedup_hits;
    return total == 0 ? 0.0
                      : static_cast<double>(dedup_hits) /
                            static_cast<double>(total);
  }
};

class BlockFollower {
 public:
  /// Borrows `explorer` (must outlive the follower). Hand it a
  /// synchronized view (LiveChain::explorer()) when the chain is being
  /// mined concurrently, and/or a chaos decorator over that view.
  explicit BlockFollower(const chain::Explorer& explorer,
                         FollowerConfig config = {});

  /// Ingests everything deployed since the last poll, in chain order.
  /// Returns the records to forward downstream (all of them, or only
  /// first-sighted code under drop_duplicates). A fetch fault or empty
  /// code still forwards the record — classifying it is the scoring
  /// engine's job (it retries and statuses per request).
  std::vector<chain::ContractRecord> poll();

  std::uint64_t cursor() const { return cursor_; }
  const FollowerStats& stats() const { return stats_; }

 private:
  struct DigestHash {
    std::size_t operator()(const evm::Hash256& h) const {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(h[i]) << (8 * i);
      }
      return static_cast<std::size_t>(v);
    }
  };

  const chain::Explorer* explorer_;
  FollowerConfig config_;
  std::uint64_t cursor_ = 0;
  FollowerStats stats_;
  std::unordered_set<evm::Hash256, DigestHash> seen_;
};

}  // namespace phishinghook::stream
