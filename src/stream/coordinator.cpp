#include "stream/coordinator.hpp"

#include <exception>
#include <sstream>

#include "common/errors.hpp"
#include "obs/trace.hpp"

namespace phishinghook::stream {

namespace {
constexpr std::chrono::microseconds kStarvedBackoff(100);
}  // namespace

StreamCoordinator::StreamCoordinator(LiveChain& chain,
                                     serve::ScoringEngine& engine,
                                     StreamConfig config,
                                     const chain::Explorer* follower_view)
    : chain_(&chain),
      engine_(&engine),
      config_(config),
      follower_(follower_view != nullptr ? *follower_view : chain.explorer(),
                config.follower),
      generator_(config.arrivals),
      addresses_(config.address_queue_capacity, "addresses"),
      futures_(config.future_queue_capacity, "futures"),
      window_(config.window),
      slo_(window_, config.slo) {}

StreamCoordinator::~StreamCoordinator() { drain(); }

void StreamCoordinator::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    throw StateError("StreamCoordinator::start called twice");
  }
  epoch_ = std::chrono::steady_clock::now();
  miner_thread_ = std::thread([this] { miner_loop(); });
  follower_thread_ = std::thread([this] { follower_loop(); });
  generator_thread_ = std::thread([this] { generator_loop(); });
  collector_thread_ = std::thread([this] { collector_loop(); });
}

bool StreamCoordinator::finished() const {
  return generator_done_.load(std::memory_order_acquire) &&
         collector_done_.load(std::memory_order_acquire);
}

void StreamCoordinator::drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!drained_.compare_exchange_strong(expected, true)) return;
  obs::ScopedSpan span("stream.drain");
  // Upstream first: stop producing, then each stage finishes what its
  // upstream already owes it before closing its own output.
  drain_requested_.store(true, std::memory_order_release);
  stop_mining_.store(true, std::memory_order_release);
  if (miner_thread_.joinable()) miner_thread_.join();
  if (follower_thread_.joinable()) follower_thread_.join();
  if (generator_thread_.joinable()) generator_thread_.join();
  if (collector_thread_.joinable()) collector_thread_.join();
  elapsed_s_ = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
}

void StreamCoordinator::miner_loop() {
  std::uint64_t mined = 0;
  while (!stop_mining_.load(std::memory_order_acquire)) {
    chain_->mine_next_block();
    mined += 1;
    metrics_.blocks_mined.set(static_cast<double>(mined));
    if (config_.max_blocks != 0 && mined >= config_.max_blocks) break;
    if (config_.paced) {
      std::this_thread::sleep_until(
          epoch_ + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(mined) / config_.blocks_per_s)));
    }
  }
  miner_done_.store(true, std::memory_order_release);
}

void StreamCoordinator::follower_loop() {
  obs::Tracer& tracer = obs::Tracer::global();
  for (;;) {
    // Read the flag *before* polling: a poll that races the miner's last
    // block may come back empty while that block is still unread, but the
    // next iteration's poll (flag already true) re-checks before exiting.
    const bool miner_was_done = miner_done_.load(std::memory_order_acquire);
    const double poll_start_us = tracer.now_us();
    const std::vector<chain::ContractRecord> fresh = follower_.poll();
    const double poll_end_us = tracer.now_us();
    const FollowerStats& stats = follower_.stats();
    metrics_.deployments_seen.set(
        static_cast<double>(stats.deployments_seen));
    metrics_.forwarded.set(static_cast<double>(stats.forwarded));
    metrics_.dedup_hit_rate.set(stats.dedup_hit_rate());
    metrics_.ingest_lag.set(static_cast<double>(stats.last_lag_blocks));
    metrics_.max_ingest_lag.set(static_cast<double>(stats.max_lag_blocks));
    bool downstream_closed = false;
    for (const chain::ContractRecord& record : fresh) {
      // Birth of the causal lane: everything from here to delivery shares
      // this trace id. The ingest work (crawl + fetch + dedup) already
      // happened inside the poll, so the stage slice is drawn over the
      // poll interval — where it actually ran.
      obs::RequestContext ctx = obs::mint_request(tracer);
      obs::stage_slice(ctx, "req.ingest", poll_start_us, poll_end_us, tracer);
      ctx.handoff_us = tracer.now_us();
      if (!addresses_.push({record.address, ctx})) {
        // Generator exited (max_requests) and closed the queue — nothing
        // downstream wants the rest.
        obs::finish_request(ctx, tracer);
        downstream_closed = true;
        break;
      }
    }
    if (downstream_closed) break;
    if (fresh.empty()) {
      if (miner_was_done) break;
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.poll_interval_us));
    }
  }
  addresses_.close();
}

void StreamCoordinator::note_addr_queue_wait(StampedAddress& stamped) {
  obs::Tracer& tracer = obs::Tracer::global();
  const double now_us = tracer.now_us();
  metrics_.addr_queue_wait.record(stamped.ctx.wait_us(now_us));
  obs::stage_slice(stamped.ctx, "req.addr_queue", stamped.ctx.handoff_us,
                   now_us, tracer);
  if (stamped.ctx.valid()) tracer.flow_step(stamped.ctx.trace_id);
}

bool StreamCoordinator::submit_one(const evm::Address& address, bool fresh,
                                   obs::RequestContext ctx) {
  std::optional<std::future<serve::ScoreResult>> future =
      engine_->try_submit(address, std::move(ctx));
  if (!future.has_value()) return false;  // engine shut down underneath us
  submitted_ += 1;
  metrics_.submitted.inc();
  if (fresh) {
    metrics_.fresh.inc();
  } else {
    metrics_.requery.inc();
  }
  if (generator_.last_in_burst()) metrics_.burst.inc();
  // Blocking push: a full future queue is collector backpressure and
  // simply stalls the arrival schedule (open-loop ⇒ later arrivals bunch).
  return futures_.push(std::move(*future));
}

void StreamCoordinator::generator_loop() {
  bool engine_alive = true;
  while (engine_alive && !drain_requested_.load(std::memory_order_acquire)) {
    if (config_.max_requests != 0 && submitted_ >= config_.max_requests) {
      break;
    }
    generator_.next_arrival();
    if (config_.paced) {
      std::this_thread::sleep_until(
          epoch_ + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           generator_.virtual_time_s())));
    }
    // Span covers handling only (draws + pop + submit), not the pacing
    // sleep — arrival handling cost is the signal, schedule gaps are not.
    obs::ScopedSpan arrival_span("stream.arrival");
    const bool want_requery = generator_.draw_requery() && !known_.empty();
    if (want_requery) {
      engine_alive = submit_one(known_[generator_.draw_index(known_.size())],
                                /*fresh=*/false);
      continue;
    }
    if (std::optional<StampedAddress> fresh = addresses_.try_pop()) {
      note_addr_queue_wait(*fresh);
      known_.push_back(fresh->address);
      engine_alive = submit_one(fresh->address, /*fresh=*/true,
                                std::move(fresh->ctx));
      continue;
    }
    if (!known_.empty()) {
      // Fresh feed momentarily empty — the arrival still lands, as a
      // re-query (real traffic doesn't pause because no one deployed).
      engine_alive = submit_one(known_[generator_.draw_index(known_.size())],
                                /*fresh=*/false);
      continue;
    }
    metrics_.starved.inc();
    std::this_thread::sleep_for(kStarvedBackoff);
  }

  // Flush: every address the follower forwarded gets submitted (unless
  // max_requests cuts the run short) — this is what makes
  // fresh_submits == follower.forwarded a drain invariant.
  while (engine_alive &&
         (config_.max_requests == 0 || submitted_ < config_.max_requests)) {
    std::optional<StampedAddress> fresh = addresses_.pop();
    if (!fresh.has_value()) break;  // follower closed and drained
    note_addr_queue_wait(*fresh);
    known_.push_back(fresh->address);
    engine_alive = submit_one(fresh->address, /*fresh=*/true,
                              std::move(fresh->ctx));
  }

  // Always close both queues on the way out: a blocked follower push
  // unblocks (false) and the collector sees end-of-stream after draining.
  addresses_.close();
  // Addresses the run ended without submitting (max_requests hit, engine
  // gone) still hold open trace lanes — close them so the exported trace
  // has no dangling async slices.
  while (std::optional<StampedAddress> leftover = addresses_.try_pop()) {
    obs::finish_request(leftover->ctx);
  }
  futures_.close();
  generator_done_.store(true, std::memory_order_release);
}

void StreamCoordinator::collector_loop() {
  for (;;) {
    std::optional<std::future<serve::ScoreResult>> future = futures_.pop();
    if (!future.has_value()) break;
    serve::ScoreResult result;
    try {
      result = future->get();
    } catch (const std::exception&) {
      // Engine futures never throw by contract; a broken promise (engine
      // destroyed mid-run) is accounted as shed, same as score_all does.
      result.status = serve::ScoreStatus::kShed;
    }
    switch (result.status) {
      case serve::ScoreStatus::kOk:
      case serve::ScoreStatus::kEmptyCode:
      case serve::ScoreStatus::kDegraded:
        metrics_.completed.inc();
        break;
      case serve::ScoreStatus::kExtractError:
      case serve::ScoreStatus::kModelError:
        metrics_.failed.inc();
        break;
      case serve::ScoreStatus::kShed:
        metrics_.shed.inc();
        break;
    }
    if (result.cache_hit) metrics_.cache_hits.inc();
    // Windowed view: anything that didn't produce a score (failure *or*
    // shed) burns the SLO's error budget.
    if (result.ok()) {
      window_.record_ok(result.latency_us);
    } else {
      window_.record_error(result.latency_us);
    }
  }
  collector_done_.store(true, std::memory_order_release);
}

StreamReport StreamCoordinator::report() const {
  StreamReport report;
  report.elapsed_s = elapsed_s_;
  report.miner = chain_->miner_stats();
  report.follower = follower_.stats();
  report.submitted = metrics_.submitted.value();
  report.fresh_submits = metrics_.fresh.value();
  report.requery_submits = metrics_.requery.value();
  report.starved_arrivals = metrics_.starved.value();
  report.burst_arrivals = metrics_.burst.value();
  report.completed = metrics_.completed.value();
  report.failed = metrics_.failed.value();
  report.shed = metrics_.shed.value();
  report.cache_hit_results = metrics_.cache_hits.value();
  report.sustained_rows_per_s =
      report.elapsed_s > 0.0
          ? static_cast<double>(report.completed) / report.elapsed_s
          : 0.0;
  report.ingest_lag_blocks = report.follower.last_lag_blocks;
  report.max_ingest_lag_blocks = report.follower.max_lag_blocks;
  const obs::SloEvaluator::Evaluation eval = slo_.evaluate();
  report.window = eval.window;
  report.error_burn_rate = eval.burn_rate;
  report.shed_pressure = eval.shed_pressure;
  return report;
}

obs::SloEvaluator::Evaluation StreamCoordinator::evaluate_slo() {
  std::lock_guard<std::mutex> lock(slo_mutex_);
  return slo_.export_to(metrics_.registry, "stream");
}

std::string StreamCoordinator::health_json() const {
  const bool started = started_.load(std::memory_order_acquire);
  const bool drained = drained_.load(std::memory_order_acquire);
  const bool draining = drain_requested_.load(std::memory_order_acquire);
  const char* status = !started ? "idle"
                       : drained ? "drained"
                       : draining ? "draining"
                                  : "running";
  std::ostringstream out;
  out << "{\"status\":\"" << status << '"'
      << ",\"finished\":" << (finished() ? "true" : "false")
      << ",\"submitted\":" << metrics_.submitted.value()
      << ",\"completed\":" << metrics_.completed.value()
      << ",\"failed\":" << metrics_.failed.value()
      << ",\"shed\":" << metrics_.shed.value()
      << ",\"queues\":{\"addresses\":{\"size\":" << addresses_.size()
      << ",\"capacity\":" << addresses_.capacity()
      << ",\"closed\":" << (addresses_.closed() ? "true" : "false")
      << "},\"futures\":{\"size\":" << futures_.size()
      << ",\"capacity\":" << futures_.capacity()
      << ",\"closed\":" << (futures_.closed() ? "true" : "false") << "}}}";
  return out.str();
}

}  // namespace phishinghook::stream
