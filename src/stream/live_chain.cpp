#include "stream/live_chain.hpp"

namespace phishinghook::stream {

LiveChain::LiveChain(synth::MinerConfig config)
    : chain_(),
      explorer_(chain_),
      miner_(chain_, explorer_, config),
      synced_(explorer_, mutex_) {}

std::uint64_t LiveChain::mine_next_block() {
  std::lock_guard<std::mutex> lock(mutex_);
  return miner_.mine_next_block();
}

std::uint64_t LiveChain::head_block() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chain_.head_block();
}

synth::MinerStats LiveChain::miner_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return miner_.stats();
}

}  // namespace phishinghook::stream
