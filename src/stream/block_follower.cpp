#include "stream/block_follower.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "obs/trace.hpp"

namespace phishinghook::stream {

BlockFollower::BlockFollower(const chain::Explorer& explorer,
                             FollowerConfig config)
    : explorer_(&explorer), config_(config) {
  cursor_ = config.start_block == FollowerConfig::kAttachAtHead
                ? explorer_->head_block()
                : config.start_block;
}

std::vector<chain::ContractRecord> BlockFollower::poll() {
  obs::ScopedSpan span("stream.poll");
  obs::ScopedSpan crawl_span("stream.crawl");
  const chain::ChainTail tail = explorer_->crawl_after(cursor_);
  crawl_span.end();
  stats_.polls += 1;
  // Lag is measured against the cursor *before* this poll consumes the
  // tail: "when we looked, how many blocks had we not yet ingested".
  const std::uint64_t lag =
      tail.head_block > cursor_ ? tail.head_block - cursor_ : 0;
  stats_.last_lag_blocks = lag;
  stats_.max_lag_blocks = std::max(stats_.max_lag_blocks, lag);

  std::vector<chain::ContractRecord> out;
  out.reserve(tail.records.size());
  obs::ScopedSpan fetch_span("stream.fetch_dedup");
  for (const chain::ContractRecord& record : tail.records) {
    stats_.deployments_seen += 1;
    bool duplicate = false;
    bool hashed = false;
    try {
      const evm::Bytecode code = explorer_->get_code(record.address);
      if (code.empty()) {
        stats_.empty_code += 1;
      } else {
        duplicate = !seen_.insert(code.code_hash()).second;
        hashed = true;
      }
    } catch (const TransientError&) {
      // The read path faulted (chaos decorator / flaky upstream). Forward
      // anyway: the engine's retry policy owns fetch-level recovery, and
      // its result status is the source of truth for this address.
      stats_.code_faults += 1;
    }
    if (hashed) {
      if (duplicate) {
        stats_.dedup_hits += 1;
      } else {
        stats_.dedup_unique += 1;
      }
    }
    if (duplicate && config_.drop_duplicates) {
      stats_.dropped += 1;
      continue;
    }
    stats_.forwarded += 1;
    out.push_back(record);
  }
  fetch_span.end();
  cursor_ = std::max(cursor_, tail.head_block);
  return out;
}

}  // namespace phishinghook::stream
