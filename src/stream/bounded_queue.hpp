// Bounded hand-off queue between streaming pipeline stages.
//
// The streaming pipeline is a chain of single-purpose threads (miner →
// follower → load generator → collector); each hop hands work across one
// of these. The bound is load-bearing: a full queue *blocks the producer*,
// which is how "follower behind the chain" becomes measurable ingest lag
// and "engine behind the generator" becomes open-loop shed, instead of
// either turning into unbounded memory growth. close() provides the
// graceful-drain handshake: producers fail fast, consumers drain what is
// queued, then see end-of-stream (nullopt).
//
// Mutex + two condition variables rather than a lock-free ring: hand-offs
// here happen at request rate (thousands/s), not at per-opcode rate, and
// the blocking semantics *are* the feature.
//
// Because blocking is the backpressure mechanism, it is also worth seeing:
// when tracing is enabled, a push or pop that *actually* waits records a
// "queue.push_wait:<name>" / "queue.pop_wait:<name>" span covering the
// wait — the uncontended fast path stays trace-silent.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/errors.hpp"
#include "obs/trace.hpp"

namespace phishinghook::stream {

template <typename T>
class BoundedQueue {
 public:
  /// `name`, when given, tags this queue's blocking-wait spans (the
  /// pointer is kept, not copied — pass a string literal).
  explicit BoundedQueue(std::size_t capacity, const char* name = nullptr)
      : capacity_(capacity), name_(name) {
    if (capacity == 0) {
      throw InvalidArgument("BoundedQueue capacity must be > 0");
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full; returns false (dropping `value`) once closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && items_.size() >= capacity_) {
      obs::ScopedSpan wait_span("queue.push_wait", name_);
      space_cv_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    pushed_ += 1;
    lock.unlock();
    items_cv_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      pushed_ += 1;
    }
    items_cv_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt means closed *and* drained (end of
  /// stream — queued items are always delivered before the close shows).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && items_.empty()) {
      obs::ScopedSpan wait_span("queue.pop_wait", name_);
      items_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) return std::nullopt;
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    popped_ += 1;
    lock.unlock();
    space_cv_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty (closed or not).
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      value.emplace(std::move(items_.front()));
      items_.pop_front();
      popped_ += 1;
    }
    space_cv_.notify_one();
    return value;
  }

  /// Stops admissions and wakes every waiter. Idempotent. Items already
  /// queued stay poppable — close() + drain is the end-of-stream handshake.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    items_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  std::uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }

  std::uint64_t total_popped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return popped_;
  }

 private:
  const std::size_t capacity_;
  const char* name_;  ///< span detail tag; may be nullptr
  mutable std::mutex mutex_;
  std::condition_variable items_cv_;  ///< signaled on push/close
  std::condition_variable space_cv_;  ///< signaled on pop/close
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t pushed_ = 0;
  std::uint64_t popped_ = 0;
};

}  // namespace phishinghook::stream
