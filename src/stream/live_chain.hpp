// LiveChain: a synthetic chain being mined and read concurrently.
//
// ChainStore and Explorer are single-threaded by design — the batch
// train→scan pipeline never needed more. The streaming subsystem runs a
// producer (the miner thread) against concurrent readers: the follower
// thread tailing new deployments plus every scoring-engine worker pulling
// bytecode through the BEM. LiveChain is the ownership-and-locking shell
// that makes that safe: one mutex serializes mine_next_block() against an
// Explorer decorator whose entire virtual read path takes the same lock.
//
// Decorator order mirrors production: chaos decorators
// (chain::FaultInjectingExplorer) wrap the *synchronized* view, so
// injected latency stalls the calling worker — never the chain lock — the
// same way a slow upstream node stalls one RPC client, not the chain.
#pragma once

#include <cstdint>
#include <mutex>

#include "chain/chain_store.hpp"
#include "chain/explorer.hpp"
#include "synth/chain_miner.hpp"

namespace phishinghook::stream {

class LiveChain {
 public:
  explicit LiveChain(synth::MinerConfig config = {});

  /// Mines one block plus its deployments, serialized against all readers.
  /// Returns the new head block.
  std::uint64_t mine_next_block();

  std::uint64_t head_block() const;
  synth::MinerStats miner_stats() const;

  /// Thread-safe explorer view over the chain (every read takes the chain
  /// lock). Hand this to the ScoringEngine and the BlockFollower, or wrap
  /// it in a FaultInjectingExplorer for chaos runs.
  const chain::Explorer& explorer() const { return synced_; }

  /// The raw chain + label write path, for quiesced inspection (tests,
  /// end-of-run summaries). Not synchronized — use only while no miner
  /// thread is running.
  chain::ChainStore& raw_chain() { return chain_; }
  chain::Explorer& raw_explorer() { return explorer_; }

 private:
  /// Locking decorator: each virtual read takes the chain mutex and
  /// delegates, making reads atomic against the miner. crawl_after in
  /// particular snapshots (records, head) under one lock hold — that
  /// pairing is what makes the follower's ingest-lag number honest.
  class SyncedExplorer final : public chain::Explorer {
   public:
    SyncedExplorer(const chain::Explorer& inner, std::mutex& mutex)
        : chain::Explorer(inner.chain()), inner_(&inner), mutex_(&mutex) {}

    std::string eth_get_code(const evm::Address& address) const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->eth_get_code(address);
    }
    evm::Bytecode get_code(const evm::Address& address) const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->get_code(address);
    }
    chain::ContractFlag flag_of(const evm::Address& address) const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->flag_of(address);
    }
    std::vector<evm::Address> crawl(chain::Month from,
                                    chain::Month to) const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->crawl(from, to);
    }
    chain::ChainTail crawl_after(std::uint64_t after_block) const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->crawl_after(after_block);
    }
    std::uint64_t head_block() const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->head_block();
    }
    std::size_t flagged_count() const override {
      std::lock_guard<std::mutex> lock(*mutex_);
      return inner_->flagged_count();
    }

   private:
    const chain::Explorer* inner_;
    std::mutex* mutex_;
  };

  mutable std::mutex mutex_;
  chain::ChainStore chain_;
  chain::Explorer explorer_;
  synth::ChainMiner miner_;
  SyncedExplorer synced_;
};

}  // namespace phishinghook::stream
