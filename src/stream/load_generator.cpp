#include "stream/load_generator.hpp"

#include <cmath>

#include "common/errors.hpp"

namespace phishinghook::stream {

LoadGenerator::LoadGenerator(ArrivalConfig config)
    : config_(config), rng_(config.seed) {
  if (!(config.rate_per_s > 0.0)) {
    throw InvalidArgument("ArrivalConfig.rate_per_s must be > 0");
  }
  if (config.burst_rate_per_s < 0.0) {
    throw InvalidArgument(
        "ArrivalConfig.burst_rate_per_s must be >= 0");
  }
  if (config.burst_rate_per_s > 0.0 &&
      (!(config.burst_every_s > 0.0) || !(config.burst_duration_s > 0.0) ||
       config.burst_duration_s >= config.burst_every_s)) {
    throw InvalidArgument(
        "burst windows need 0 < burst_duration_s < burst_every_s");
  }
  if (config.requery_fraction < 0.0 || config.requery_fraction > 1.0) {
    throw InvalidArgument(
        "ArrivalConfig.requery_fraction must be in [0, 1]");
  }
}

ArrivalConfig LoadGenerator::steady_scenario() {
  ArrivalConfig config;
  config.rate_per_s = 2000.0;
  config.burst_rate_per_s = 0.0;
  return config;
}

ArrivalConfig LoadGenerator::mempool_burst_scenario() {
  ArrivalConfig config;
  config.rate_per_s = 1000.0;
  config.burst_rate_per_s = 20000.0;
  config.burst_every_s = 0.5;
  config.burst_duration_s = 0.05;
  return config;
}

bool LoadGenerator::in_burst(double t) const {
  if (config_.burst_rate_per_s <= 0.0) return false;
  const double phase = std::fmod(t, config_.burst_every_s);
  return phase < config_.burst_duration_s;
}

double LoadGenerator::rate_at(double t) const {
  return in_burst(t) ? config_.burst_rate_per_s : config_.rate_per_s;
}

double LoadGenerator::next_arrival() {
  // Exponential gap at the rate in effect where the previous arrival
  // landed. (Not exact thinning across a window edge — the error is one
  // gap wide and irrelevant at these rates — but it keeps the schedule a
  // pure, replayable function of the draw sequence.)
  const double rate = rate_at(virtual_time_s_);
  const double u = rng_.next_double();  // [0, 1)
  const double gap = -std::log1p(-u) / rate;
  virtual_time_s_ += gap;
  last_in_burst_ = in_burst(virtual_time_s_);
  arrivals_ += 1;
  return gap;
}

bool LoadGenerator::draw_requery() {
  return rng_.bernoulli(config_.requery_fraction);
}

std::size_t LoadGenerator::draw_index(std::size_t n) {
  return static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint64_t>(n)));
}

}  // namespace phishinghook::stream
