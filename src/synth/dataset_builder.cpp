#include "synth/dataset_builder.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace phishinghook::synth {

using chain::ChainStore;
using chain::ContractFlag;
using chain::ContractRecord;
using chain::Explorer;

std::size_t BuiltDataset::phishing_count() const {
  return static_cast<std::size_t>(
      std::count_if(samples.begin(), samples.end(),
                    [](const LabeledContract& s) { return s.phishing; }));
}

std::size_t BuiltDataset::benign_count() const {
  return samples.size() - phishing_count();
}

DatasetBuilder::DatasetBuilder(DatasetConfig config) : config_(config) {}

const std::array<double, chain::Month::kCount>&
DatasetBuilder::monthly_profile() {
  // Shaped after the paper's Fig. 2: a modest tail end of 2023, a broad 2024
  // spring/summer peak, easing off toward October 2024.
  static const std::array<double, chain::Month::kCount> kProfile = {
      0.040, 0.050, 0.060, 0.070, 0.080, 0.090, 0.105,
      0.120, 0.110, 0.100, 0.080, 0.055, 0.040};
  return kProfile;
}

BuiltDataset DatasetBuilder::build() const {
  obs::ScopedSpan build_span("synth.build");
  common::Rng rng(config_.seed);
  const ContractSynthesizer synth(config_.synth);

  BuiltDataset out;
  out.chain = std::make_shared<ChainStore>();
  out.explorer = std::make_shared<Explorer>(*out.chain);
  ChainStore& chain = *out.chain;
  Explorer& explorer = *out.explorer;

  const std::size_t unique_target = config_.target_size / 2;
  const auto& profile = monthly_profile();

  // Track which generated deployments are phishing (ground truth the label
  // service publishes; the pipeline below only reads it back through the
  // explorer, never directly).
  struct FamilyTag {
    ContractFamily family;
  };
  std::map<Address, FamilyTag> family_of;

  // --- populate the chain, month by month ---------------------------------
  obs::ScopedSpan populate_span("synth.populate");
  for (int m = 0; m < chain::Month::kCount; ++m) {
    const Month month{m};
    chain.advance_to(month);

    // Phishing campaigns until this month's unique quota is met.
    const std::size_t month_unique_quota = std::max<std::size_t>(
        1, static_cast<std::size_t>(profile[m] * static_cast<double>(unique_target) + 0.5));
    std::size_t month_uniques = 0;
    while (month_uniques < month_unique_quota) {
      const Address owner = random_address(rng);
      const Address deployer = random_address(rng);
      const int clones = rng.geometric(
          1.0 - 1.0 / config_.duplicate_rate, /*cap=*/24);

      if (rng.bernoulli(0.4)) {
        // Proxy army: implementation + `clones` bit-identical ERC-1167
        // clones of it.
        const SynthContract impl = synth.phishing(month, rng, owner);
        const ContractRecord& impl_record =
            chain.register_contract(deployer, impl.runtime);
        explorer.flag(impl_record.address, ContractFlag::kPhishHack);
        family_of[impl_record.address] = {impl.family};
        month_uniques += 1;
        const SynthContract proxy =
            synth.minimal_proxy(impl_record.address, /*phishing=*/true);
        for (int c = 0; c < std::max(1, clones); ++c) {
          const ContractRecord& record =
              chain.register_contract(deployer, proxy.runtime);
          explorer.flag(record.address, ContractFlag::kPhishHack);
          family_of[record.address] = {ContractFamily::kMinimalProxy};
        }
        month_uniques += 1;  // the (deduped) proxy bytecode itself
      } else {
        // Verbatim redeploys of a single drainer.
        const SynthContract drainer = synth.phishing(month, rng, owner);
        for (int c = 0; c < 1 + clones; ++c) {
          const ContractRecord& record =
              chain.register_contract(deployer, drainer.runtime);
          explorer.flag(record.address, ContractFlag::kPhishHack);
          family_of[record.address] = {drainer.family};
        }
        month_uniques += 1;
      }
    }

    // Benign deployments: uniform across the window by default, temporally
    // matched for the Fig. 8 dataset. Slight oversampling leaves room for
    // the balancing step to choose.
    const double benign_fraction = config_.match_benign_temporal
                                       ? profile[m]
                                       : 1.0 / chain::Month::kCount;
    const std::size_t benign_quota = std::max<std::size_t>(
        2, static_cast<std::size_t>(1.6 * benign_fraction *
                                        static_cast<double>(unique_target) +
                                    0.5));
    for (std::size_t i = 0; i < benign_quota; ++i) {
      const SynthContract contract = synth.benign(month, rng);
      const Address deployer = random_address(rng);
      const ContractRecord& record =
          chain.register_contract(deployer, contract.runtime);
      family_of[record.address] = {contract.family};
      // A minority of benign deployments are proxy clones of legitimate
      // implementations — duplicates exist on both sides.
      if (rng.bernoulli(0.12)) {
        const SynthContract proxy =
            synth.minimal_proxy(record.address, /*phishing=*/false);
        const int benign_clones = 1 + rng.geometric(0.5, 6);
        for (int c = 0; c < benign_clones; ++c) {
          const ContractRecord& clone =
              chain.register_contract(deployer, proxy.runtime);
          family_of[clone.address] = {ContractFamily::kMinimalProxy};
        }
      }
    }
  }

  populate_span.end();

  // --- crawl + scrape + BEM + dedup (the paper's pipeline) -----------------
  obs::ScopedSpan dedup_span("synth.dedup");
  const std::vector<Address> all =
      explorer.crawl(Month{0}, Month{chain::Month::kCount - 1});

  std::map<std::string, LabeledContract> unique_phishing;
  std::map<std::string, LabeledContract> unique_benign;
  for (const Address& address : all) {
    const ContractRecord* record = chain.find(address);
    const bool phishing = explorer.is_flagged_phishing(address);
    if (phishing) {
      out.raw_phishing += 1;
      out.phishing_per_month[record->month.index] += 1;
    }
    const Bytecode code = explorer.get_code(address);  // eth_getCode (BEM)
    const std::string key = evm::hash_to_hex(code.code_hash());
    auto& bucket = phishing ? unique_phishing : unique_benign;
    if (bucket.contains(key)) continue;  // bit-by-bit duplicate
    LabeledContract sample;
    sample.code = code;
    sample.phishing = phishing;
    sample.month = record->month;
    sample.address = address;
    sample.family = family_of.at(address).family;
    bucket.emplace(key, std::move(sample));
  }
  out.unique_phishing = unique_phishing.size();
  dedup_span.end();

  // --- balance & shuffle -------------------------------------------------
  obs::ScopedSpan balance_span("synth.balance");
  std::vector<LabeledContract> phishing_samples;
  phishing_samples.reserve(unique_phishing.size());
  for (auto& [key, sample] : unique_phishing) {
    phishing_samples.push_back(std::move(sample));
  }
  std::vector<LabeledContract> benign_samples;
  benign_samples.reserve(unique_benign.size());
  for (auto& [key, sample] : unique_benign) {
    benign_samples.push_back(std::move(sample));
  }
  rng.shuffle(phishing_samples);
  rng.shuffle(benign_samples);

  const std::size_t per_class = std::min(
      {config_.target_size / 2, phishing_samples.size(), benign_samples.size()});
  out.samples.reserve(2 * per_class);
  for (std::size_t i = 0; i < per_class; ++i) {
    out.samples.push_back(std::move(phishing_samples[i]));
    out.samples.push_back(std::move(benign_samples[i]));
  }
  rng.shuffle(out.samples);
  balance_span.end();

  common::log_event(
      common::LogLevel::kInfo, "synth.build",
      {{"raw_phishing", out.raw_phishing},
       {"unique_phishing", out.unique_phishing},
       {"final_size", out.samples.size()}});
  return out;
}

TemporalSplit temporal_split(const std::vector<LabeledContract>& samples) {
  TemporalSplit split;
  for (const LabeledContract& sample : samples) {
    if (sample.month.index <= 3) {
      split.train.push_back(&sample);
    } else {
      split.monthly_tests[static_cast<std::size_t>(sample.month.index - 4)]
          .push_back(&sample);
    }
  }
  return split;
}

}  // namespace phishinghook::synth
