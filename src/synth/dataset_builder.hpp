// Dataset construction: the paper's data-gathering + BEM pipeline.
//
// Populates a simulated chain with phishing campaigns and benign
// deployments over the 2023-10..2024-10 window, then reproduces the paper's
// dataset construction exactly:
//
//   1. crawl the contract registry for the window (BigQuery stand-in),
//   2. scrape the explorer's "Phish/Hack" flags (etherscan stand-in),
//   3. extract deployed bytecode via eth_getCode (the BEM),
//   4. deduplicate bit-by-bit identical bytecodes (minimal-proxy clones and
//      campaign redeploys produce the paper's ~5x duplication),
//   5. balance with an equal number of benign samples.
//
// Campaign structure drives the duplicate rate: a campaign either redeploys
// one drainer verbatim or deploys an implementation plus an army of
// bit-identical ERC-1167 proxies.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "chain/explorer.hpp"
#include "synth/contract_synthesizer.hpp"

namespace phishinghook::synth {

/// One labeled sample of the final dataset.
struct LabeledContract {
  Bytecode code;
  bool phishing = false;
  Month month;        ///< deployment month (drives temporal splits)
  Address address;    ///< on-chain address (provenance/debugging)
  ContractFamily family = ContractFamily::kUtility;
};

struct DatasetConfig {
  /// Final balanced dataset size (phishing + benign).
  std::size_t target_size = 600;
  std::uint64_t seed = 42;
  /// Mean raw:unique ratio for phishing deployments (paper: 17,455 raw /
  /// 3,458 unique ~ 5.0).
  double duplicate_rate = 5.0;
  /// Main dataset samples benign uniformly over the window; the
  /// time-resistance dataset (Fig. 8) matches the phishing temporal profile.
  bool match_benign_temporal = false;
  SynthConfig synth;
};

/// Construction statistics + samples, with the underlying chain retained so
/// callers can demonstrate the explorer workflow on it.
class BuiltDataset {
 public:
  std::vector<LabeledContract> samples;  ///< balanced, deduped, shuffled

  std::size_t raw_phishing = 0;     ///< before dedup (paper: 17,455)
  std::size_t unique_phishing = 0;  ///< after dedup (paper: 3,458)
  std::array<std::size_t, chain::Month::kCount> phishing_per_month{};  ///< Fig. 2

  std::shared_ptr<chain::ChainStore> chain;
  std::shared_ptr<chain::Explorer> explorer;

  std::size_t phishing_count() const;
  std::size_t benign_count() const;
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetConfig config = {});

  /// Runs the full pipeline. Deterministic in `config.seed`.
  BuiltDataset build() const;

  /// The paper's Fig. 2 temporal profile (fraction of phishing deployments
  /// per month; sums to 1).
  static const std::array<double, chain::Month::kCount>& monthly_profile();

 private:
  DatasetConfig config_;
};

/// Time-resistance split (Fig. 8): train = months 2023-10..2024-01, nine
/// monthly test sets 2024-02..2024-10.
struct TemporalSplit {
  std::vector<const LabeledContract*> train;
  std::array<std::vector<const LabeledContract*>, 9> monthly_tests;
};

TemporalSplit temporal_split(const std::vector<LabeledContract>& samples);

}  // namespace phishinghook::synth
