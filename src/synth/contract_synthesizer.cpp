#include "synth/contract_synthesizer.hpp"

#include <functional>
#include <utility>
#include <vector>

namespace phishinghook::synth {

std::string_view family_name(ContractFamily family) {
  switch (family) {
    case ContractFamily::kToken: return "token";
    case ContractFamily::kVault: return "vault";
    case ContractFamily::kRegistry: return "registry";
    case ContractFamily::kUtility: return "utility";
    case ContractFamily::kSweeperWallet: return "sweeper-wallet";
    case ContractFamily::kClaimDrainer: return "claim-drainer";
    case ContractFamily::kApprovalHarvester: return "approval-harvester";
    case ContractFamily::kFakeToken: return "fake-token";
    case ContractFamily::kStealthDrainer: return "stealth-drainer";
    case ContractFamily::kMinimalProxy: return "minimal-proxy";
  }
  return "?";
}

namespace {

using BodyFn = std::function<void(Assembler&)>;

/// Assembles a full contract: prelude, optional non-payable guard, selector
/// dispatcher, terminating function bodies, fallback, metadata trailer.
Bytecode build_contract(const std::vector<std::pair<std::uint32_t, BodyFn>>& fns,
                        const BodyFn& fallback, bool guard_value, Rng& rng) {
  Assembler a;
  emit_prelude(a);
  if (guard_value) emit_callvalue_guard(a);

  const Label fb = a.make_label();

  // calldatasize < 4 -> fallback.
  a.op(Op::kCalldatasize).push(4).op(Op::kGt);  // 4 > size
  a.jump_if(fb);

  emit_load_selector(a);
  std::vector<Label> entries;
  entries.reserve(fns.size());
  for (const auto& [selector, body] : fns) {
    (void)body;
    const Label entry = a.make_label();
    entries.push_back(entry);
    a.op(Op::kDup1).push_selector(selector).op(Op::kEq);
    a.jump_if(entry);
  }
  a.op(Op::kPop);
  a.jump(fb);

  for (std::size_t i = 0; i < fns.size(); ++i) {
    a.bind(entries[i]);
    a.op(Op::kPop);  // drop the selector
    fns[i].second(a);
  }

  a.bind(fb);
  fallback(a);

  emit_metadata_trailer(a, rng);
  return a.build();
}

BodyFn revert_body() {
  return [](Assembler& a) { emit_revert(a); };
}

BodyFn stop_body() {
  return [](Assembler& a) { a.op(Op::kStop); };
}

}  // namespace

double ContractSynthesizer::obfuscation(Month month) const {
  return config_.obfuscation_base +
         config_.obfuscation_drift *
             (static_cast<double>(month.index) / (Month::kCount - 1));
}

double ContractSynthesizer::stealth_share(Month month) const {
  return config_.stealth_base +
         config_.stealth_drift *
             (static_cast<double>(month.index) / (Month::kCount - 1));
}

SynthContract ContractSynthesizer::benign(Month month, Rng& rng) const {
  switch (rng.weighted_index({0.30, 0.22, 0.18, 0.18, 0.12})) {
    case 0: return benign_token(month, rng);
    case 1: return benign_vault(month, rng);
    case 2: return benign_registry(month, rng);
    case 3: return benign_utility(month, rng);
    default: return benign_sweeper(month, rng);
  }
}

SynthContract ContractSynthesizer::phishing(Month month, Rng& rng,
                                            const Address& owner) const {
  // Attack patterns evolve over the window: the stealth drainer's share
  // grows month over month (the Fig. 8 decay mechanism).
  if (rng.bernoulli(stealth_share(month))) {
    return phishing_stealth_drainer(month, rng, owner);
  }
  switch (rng.weighted_index({0.40, 0.30, 0.30})) {
    case 0: return phishing_claim_drainer(month, rng, owner);
    case 1: return phishing_approval_harvester(month, rng, owner);
    default: return phishing_fake_token(month, rng, owner);
  }
}

SynthContract ContractSynthesizer::minimal_proxy(
    const Address& implementation, bool implementation_is_phishing) const {
  SynthContract out;
  out.runtime = minimal_proxy_runtime(implementation);
  out.family = ContractFamily::kMinimalProxy;
  out.phishing = implementation_is_phishing;
  return out;
}

Bytecode ContractSynthesizer::wrap_init_code(const Bytecode& runtime) {
  // PUSH2 len PUSH2 off PUSH0 CODECOPY PUSH2 len PUSH0 RETURN ++ runtime
  // Header is 13 bytes with fixed-width pushes.
  constexpr std::size_t kHeader = 13;
  const std::size_t len = runtime.size();
  if (len > 0xFFFF) throw InvalidArgument("runtime code exceeds PUSH2 range");
  std::vector<std::uint8_t> code;
  code.reserve(kHeader + len);
  auto push2 = [&code](std::size_t v) {
    code.push_back(evm::op_byte(Op::kPush2));
    code.push_back(static_cast<std::uint8_t>(v >> 8));
    code.push_back(static_cast<std::uint8_t>(v & 0xFF));
  };
  push2(len);                                // len (deepest: copy length)
  push2(kHeader);                            // src offset
  code.push_back(evm::op_byte(Op::kPush0));  // dst
  code.push_back(evm::op_byte(Op::kCodecopy));
  push2(len);                                // return length
  code.push_back(evm::op_byte(Op::kPush0));  // return offset
  code.push_back(evm::op_byte(Op::kReturn));
  code.insert(code.end(), runtime.bytes().begin(), runtime.bytes().end());
  return Bytecode(std::move(code));
}

// --- benign templates -----------------------------------------------------

SynthContract ContractSynthesizer::benign_token(Month month, Rng& rng) const {
  (void)month;
  const bool sloppy = rng.bernoulli(config_.sloppy_benign_prob);
  const std::uint64_t balances_slot = rng.next_below(8);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // totalSupply()-style getter.
  fns.emplace_back(random_selector(rng), [slot = rng.next_below(16)](Assembler& a) {
    emit_getter_body(a, slot);
  });
  // balanceOf(caller)-style mapping getter.
  fns.emplace_back(random_selector(rng), [balances_slot](Assembler& a) {
    emit_mapping_slot_for_caller(a, balances_slot);
    a.op(Op::kSload);
    emit_return_word(a);
  });
  // transfer()-like move with checked arithmetic and an event.
  const int moves = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < moves; ++i) {
    fns.emplace_back(random_selector(rng),
                     [balances_slot, seed = rng.next_u64()](Assembler& a) {
                       Rng body_rng(seed);
                       emit_token_move_body(a, body_rng, balances_slot);
                     });
  }
  // approve()-like: store allowance, event, return true.
  fns.emplace_back(random_selector(rng),
                   [slot = 8 + rng.next_below(8), seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     a.push(0x04).op(Op::kCalldataload);
                     emit_mapping_slot_for_caller(a, slot);
                     a.op(Op::kSwap1).op(Op::kDup2).op(Op::kSstore);
                     a.op(Op::kSload);  // read back (solc often re-reads)
                     emit_transfer_event(a, body_rng);
                     a.push(1);
                     emit_return_word(a);
                   });
  // decimals()-style constant getter.
  fns.emplace_back(random_selector(rng), [v = 6 + rng.next_below(13)](Assembler& a) {
    a.push(v);
    emit_return_word(a);
  });
  // Optional hook performing a disciplined external call.
  if (!sloppy) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       emit_gas_check(a, 2300 + body_rng.next_below(4000));
                       emit_safe_external_call(a, random_address(body_rng));
                       emit_benign_filler(a, body_rng,
                                          1 + static_cast<int>(body_rng.next_below(
                                              static_cast<std::uint64_t>(config_.max_filler))));
                       emit_return_empty(a);
                     });
  }
  // Padding view functions.
  const int extra = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(config_.benign_max_functions - config_.benign_min_functions + 1)));
  for (int i = 0; i < extra; ++i) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       emit_benign_filler(a, body_rng,
                                          1 + static_cast<int>(body_rng.next_below(
                                              static_cast<std::uint64_t>(config_.max_filler))));
                       a.push(body_rng.next_u64());
                       emit_return_word(a);
                     });
  }
  rng.shuffle(fns);

  SynthContract out;
  out.runtime = build_contract(fns, revert_body(), /*guard_value=*/!sloppy, rng);
  out.family = ContractFamily::kToken;
  out.phishing = false;
  return out;
}

SynthContract ContractSynthesizer::benign_vault(Month month, Rng& rng) const {
  (void)month;
  const bool sloppy = rng.bernoulli(config_.sloppy_benign_prob);
  const std::uint64_t balances_slot = rng.next_below(8);
  const std::uint64_t guard_slot = 100 + rng.next_below(8);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // deposit(): credit balances[caller] with msg.value using checked add.
  fns.emplace_back(random_selector(rng),
                   [balances_slot, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     emit_mapping_slot_for_caller(a, balances_slot);
                     a.op(Op::kDup1).op(Op::kSload);   // [slot, bal]
                     a.op(Op::kCallvalue);             // [slot, bal, value]
                     emit_checked_add(a);              // [slot, bal+value]
                     a.op(Op::kSwap1).op(Op::kSstore);
                     a.op(Op::kCallvalue);
                     emit_transfer_event(a, body_rng);
                     emit_return_empty(a);
                   });
  // withdraw(): reentrancy guard + gas discipline.
  fns.emplace_back(random_selector(rng),
                   [guard_slot, sloppy, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     if (sloppy) {
                       emit_safe_external_call(a, random_address(body_rng));
                       emit_return_empty(a);
                     } else {
                       emit_vault_withdraw_body(a, body_rng, guard_slot);
                     }
                   });
  // balance getter.
  fns.emplace_back(random_selector(rng), [balances_slot](Assembler& a) {
    emit_mapping_slot_for_caller(a, balances_slot);
    a.op(Op::kSload);
    emit_return_word(a);
  });
  // paused()/owner() getters.
  fns.emplace_back(random_selector(rng), [slot = rng.next_below(4)](Assembler& a) {
    emit_getter_body(a, slot);
  });
  // admin setter gated on a stored owner.
  fns.emplace_back(random_selector(rng), [slot = rng.next_below(4)](Assembler& a) {
    Assembler& b = a;
    const Label ok = b.make_label();
    b.push(slot).op(Op::kSload).op(Op::kCaller).op(Op::kEq);
    b.jump_if(ok);
    emit_revert(b);
    b.bind(ok);
    b.push(0x04).op(Op::kCalldataload).push(slot + 16).op(Op::kSstore);
    emit_return_empty(b);
  });
  const int extra = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < extra; ++i) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       emit_benign_filler(a, body_rng,
                                          1 + static_cast<int>(body_rng.next_below(
                                              static_cast<std::uint64_t>(config_.max_filler))));
                       emit_return_empty(a);
                     });
  }
  rng.shuffle(fns);

  SynthContract out;
  // Vaults are payable: value guard only on the dispatcher when sloppy.
  out.runtime = build_contract(fns, sloppy ? revert_body() : stop_body(),
                               /*guard_value=*/false, rng);
  out.family = ContractFamily::kVault;
  out.phishing = false;
  return out;
}

SynthContract ContractSynthesizer::benign_registry(Month month, Rng& rng) const {
  (void)month;
  const std::uint64_t base_slot = rng.next_below(8);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // register(value): stores calldata under keccak(caller, slot).
  fns.emplace_back(random_selector(rng), [base_slot](Assembler& a) {
    a.push(0x04).op(Op::kCalldataload);
    emit_mapping_slot_for_caller(a, base_slot);
    a.op(Op::kSwap1).op(Op::kDup2).op(Op::kSstore).op(Op::kPop);
    a.push(1);
    emit_return_word(a);
  });
  // resolve(): reads it back.
  fns.emplace_back(random_selector(rng), [base_slot](Assembler& a) {
    emit_mapping_slot_for_caller(a, base_slot);
    a.op(Op::kSload);
    emit_return_word(a);
  });
  // unregister(): zeroes the slot.
  fns.emplace_back(random_selector(rng), [base_slot](Assembler& a) {
    a.op(Op::kPush0);
    emit_mapping_slot_for_caller(a, base_slot);
    a.op(Op::kSstore);
    emit_return_empty(a);
  });
  // digest(): hashes calldata — registries fingerprint entries.
  fns.emplace_back(random_selector(rng), [](Assembler& a) {
    a.push(0x04).op(Op::kCalldataload).op(Op::kPush0).op(Op::kMstore);
    a.push(0x20).op(Op::kPush0).op(Op::kSha3);
    emit_return_word(a);
  });
  const int extra = 1 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < extra; ++i) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       emit_benign_filler(a, body_rng,
                                          1 + static_cast<int>(body_rng.next_below(
                                              static_cast<std::uint64_t>(config_.max_filler))));
                       a.push(body_rng.next_below(2));
                       emit_return_word(a);
                     });
  }
  rng.shuffle(fns);

  SynthContract out;
  out.runtime = build_contract(fns, revert_body(), /*guard_value=*/true, rng);
  out.family = ContractFamily::kRegistry;
  out.phishing = false;
  return out;
}

SynthContract ContractSynthesizer::benign_utility(Month month, Rng& rng) const {
  (void)month;
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;
  const int count =
      config_.benign_min_functions +
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
          config_.benign_max_functions - config_.benign_min_functions + 1)));
  for (int i = 0; i < count; ++i) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       switch (body_rng.next_below(3)) {
                         case 0: {  // pure checked arithmetic on calldata
                           a.push(0x04).op(Op::kCalldataload);
                           a.push(0x24).op(Op::kCalldataload);
                           emit_checked_add(a);
                           emit_return_word(a);
                           break;
                         }
                         case 1: {  // hash helper
                           a.push(0x04).op(Op::kCalldataload);
                           a.push(0x80).op(Op::kMstore);
                           a.push(0x20).push(0x80).op(Op::kSha3);
                           emit_return_word(a);
                           break;
                         }
                         default: {  // filler + constant
                           emit_benign_filler(
                               a, body_rng,
                               2 + static_cast<int>(body_rng.next_below(
                                   static_cast<std::uint64_t>(config_.max_filler))));
                           a.push(body_rng.next_u64());
                           emit_return_word(a);
                           break;
                         }
                       }
                     });
  }

  SynthContract out;
  out.runtime = build_contract(fns, revert_body(), /*guard_value=*/true, rng);
  out.family = ContractFamily::kUtility;
  out.phishing = false;
  return out;
}

SynthContract ContractSynthesizer::benign_sweeper(Month month, Rng& rng) const {
  (void)month;
  const std::uint64_t wallet_slot = rng.next_below(4);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // flush()/sweep(): move the full balance to the stored cold wallet, with
  // gas discipline, a success check and an event — the legitimate twin of
  // the drain pattern.
  fns.emplace_back(random_selector(rng),
                   [wallet_slot, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     emit_cold_sweep_body(a, body_rng, wallet_slot);
                   });
  // setColdWallet(): owner-gated setter.
  fns.emplace_back(random_selector(rng), [wallet_slot](Assembler& a) {
    const Label ok = a.make_label();
    a.push(wallet_slot + 8).op(Op::kSload).op(Op::kCaller).op(Op::kEq);
    a.jump_if(ok);
    emit_revert(a);
    a.bind(ok);
    a.push(0x04).op(Op::kCalldataload).push(wallet_slot).op(Op::kSstore);
    emit_return_empty(a);
  });
  // coldWallet() getter and a balance view.
  fns.emplace_back(random_selector(rng), [wallet_slot](Assembler& a) {
    emit_getter_body(a, wallet_slot);
  });
  fns.emplace_back(random_selector(rng), [](Assembler& a) {
    a.op(Op::kSelfbalance);
    emit_return_word(a);
  });
  const int extra = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < extra; ++i) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       emit_benign_filler(a, body_rng,
                                          1 + static_cast<int>(body_rng.next_below(
                                              static_cast<std::uint64_t>(config_.max_filler))));
                       emit_return_empty(a);
                     });
  }
  rng.shuffle(fns);

  SynthContract out;
  // Payable: receiving funds is the point; the fallback accepts silently.
  out.runtime = build_contract(fns, stop_body(), /*guard_value=*/false, rng);
  out.family = ContractFamily::kSweeperWallet;
  out.phishing = false;
  return out;
}

// --- phishing templates ------------------------------------------------------

SynthContract ContractSynthesizer::phishing_claim_drainer(
    Month month, Rng& rng, const Address& owner) const {
  const double obf = obfuscation(month);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // claim()/claimReward()/airdrop(): the bait entry points.
  const int baits = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < baits; ++i) {
    fns.emplace_back(random_selector(rng),
                     [owner, obf, seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       emit_camouflage(a, body_rng, obf);
                       emit_fake_claim_body(a, body_rng, owner);
                       (void)this;
                     });
  }
  // Hidden owner exit: origin-gated sweep, sometimes SELFDESTRUCT.
  fns.emplace_back(random_selector(rng),
                   [owner, seed = rng.next_u64(), this](Assembler& a) {
                     Rng body_rng(seed);
                     const Label go = a.make_label();
                     if (body_rng.bernoulli(config_.origin_gate_prob)) {
                       emit_origin_gate(a, owner, go);
                     } else {
                       a.op(Op::kCaller);
                       a.push_bytes(owner.bytes());
                       a.op(Op::kEq);
                       a.jump_if(go);
                     }
                     emit_revert(a);
                     a.bind(go);
                     if (body_rng.bernoulli(0.4)) {
                       emit_selfdestruct_exit(a, owner);
                     } else {
                       emit_sweep_balance(a, owner, body_rng);
                       emit_return_empty(a);
                     }
                   });

  SynthContract out;
  // Payable fallback silently accepting funds (STOP), occasionally sweeping.
  const BodyFn fallback = [owner, obf, seed = rng.next_u64()](Assembler& a) {
    Rng body_rng(seed);
    if (body_rng.bernoulli(0.3)) {
      emit_sweep_balance(a, owner, body_rng);
    }
    if (body_rng.bernoulli(obf)) {
      emit_benign_filler(a, body_rng, 1);
    }
    a.op(Op::kStop);
  };
  out.runtime = build_contract(fns, fallback, /*guard_value=*/false, rng);
  out.family = ContractFamily::kClaimDrainer;
  out.phishing = true;
  return out;
}

SynthContract ContractSynthesizer::phishing_approval_harvester(
    Month month, Rng& rng, const Address& owner) const {
  const double obf = obfuscation(month);
  const Address token = random_address(rng);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // The harvest entry points ("claimAirdrop", "stake", ...).
  const int entries = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < entries; ++i) {
    fns.emplace_back(random_selector(rng),
                     [token, owner, obf, seed = rng.next_u64()](Assembler& a) {
                       Rng body_rng(seed);
                       emit_camouflage(a, body_rng, obf);
                       emit_approval_harvest(a, token, owner);
                       if (body_rng.bernoulli(0.5)) {
                         emit_sweep_balance(a, owner, body_rng);
                       }
                       emit_return_empty(a);
                     });
  }
  // Multi-token variant: harvest several token contracts in sequence.
  fns.emplace_back(random_selector(rng),
                   [owner, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     const int tokens = 2 + static_cast<int>(body_rng.next_below(3));
                     for (int t = 0; t < tokens; ++t) {
                       emit_approval_harvest(a, random_address(body_rng), owner);
                     }
                     emit_return_empty(a);
                   });
  // Owner exit.
  fns.emplace_back(random_selector(rng),
                   [owner, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     const Label go = a.make_label();
                     emit_origin_gate(a, owner, go);
                     emit_revert(a);
                     a.bind(go);
                     emit_sweep_balance(a, owner, body_rng);
                     emit_return_empty(a);
                   });

  SynthContract out;
  const BodyFn fallback = [](Assembler& a) { a.op(Op::kStop); };
  out.runtime = build_contract(fns, fallback, /*guard_value=*/false, rng);
  out.family = ContractFamily::kApprovalHarvester;
  out.phishing = true;
  return out;
}

SynthContract ContractSynthesizer::phishing_fake_token(
    Month month, Rng& rng, const Address& owner) const {
  const double obf = obfuscation(month);
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // Looks like a token: getters return plausible constants.
  fns.emplace_back(random_selector(rng), [v = rng.next_u64()](Assembler& a) {
    a.push(v);
    emit_return_word(a);
  });
  fns.emplace_back(random_selector(rng), [](Assembler& a) {
    a.push(18);
    emit_return_word(a);
  });
  // transfer(): emits the event but moves nothing — the honeypot face.
  fns.emplace_back(random_selector(rng),
                   [obf, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     emit_camouflage(a, body_rng, obf);
                     a.push(0x04).op(Op::kCalldataload);
                     emit_transfer_event(a, body_rng);
                     a.push(1);
                     emit_return_word(a);
                   });
  // buy()/mint(): accepts ETH, forwards it straight to the owner.
  fns.emplace_back(random_selector(rng),
                   [owner, seed = rng.next_u64()](Assembler& a) {
                     Rng body_rng(seed);
                     emit_sweep_balance(a, owner, body_rng);
                     if (body_rng.bernoulli(0.5)) {
                       a.op(Op::kCallvalue);
                       emit_transfer_event(a, body_rng);
                     }
                     emit_return_empty(a);
                   });
  // Hidden rug: origin-gated SELFDESTRUCT.
  fns.emplace_back(random_selector(rng), [owner](Assembler& a) {
    const Label go = a.make_label();
    emit_origin_gate(a, owner, go);
    emit_revert(a);
    a.bind(go);
    emit_selfdestruct_exit(a, owner);
  });

  rng.shuffle(fns);
  SynthContract out;
  const BodyFn fallback = [owner, seed = rng.next_u64()](Assembler& a) {
    Rng body_rng(seed);
    emit_sweep_balance(a, owner, body_rng);
    a.op(Op::kStop);
  };
  out.runtime = build_contract(fns, fallback, /*guard_value=*/false, rng);
  out.family = ContractFamily::kFakeToken;
  out.phishing = true;
  return out;
}

SynthContract ContractSynthesizer::phishing_stealth_drainer(
    Month month, Rng& rng, const Address& owner) const {
  (void)month;
  std::vector<std::pair<std::uint32_t, BodyFn>> fns;

  // The bait entry: structurally a benign cold sweep paying the attacker.
  const int baits = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < baits; ++i) {
    fns.emplace_back(random_selector(rng),
                     [owner, seed = rng.next_u64()](Assembler& a) {
                       Rng body_rng(seed);
                       emit_stealth_drain_body(a, body_rng, owner);
                     });
  }
  // claimed(address) getter — the honest-looking read side.
  fns.emplace_back(random_selector(rng), [slot = 16 + rng.next_below(8)](Assembler& a) {
    emit_mapping_slot_for_caller(a, slot);
    a.op(Op::kSload);
    emit_return_word(a);
  });
  // Benign-shaped padding: getters and filler, as a real dApp would have.
  const int extra = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < extra; ++i) {
    fns.emplace_back(random_selector(rng),
                     [seed = rng.next_u64(), this](Assembler& a) {
                       Rng body_rng(seed);
                       if (body_rng.bernoulli(0.5)) {
                         emit_benign_filler(a, body_rng,
                                            1 + static_cast<int>(body_rng.next_below(
                                                static_cast<std::uint64_t>(config_.max_filler))));
                         a.push(body_rng.next_u64());
                         emit_return_word(a);
                       } else {
                         emit_getter_body(a, body_rng.next_below(16));
                       }
                     });
  }
  rng.shuffle(fns);

  SynthContract out;
  // Benign-style epilogue: reverting fallback, like solc's default.
  out.runtime = build_contract(fns, revert_body(), /*guard_value=*/false, rng);
  out.family = ContractFamily::kStealthDrainer;
  out.phishing = true;
  return out;
}

}  // namespace phishinghook::synth
