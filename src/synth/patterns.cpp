#include "synth/patterns.hpp"

#include <array>

namespace phishinghook::synth {

namespace {

// keccak256("Transfer(address,address,uint256)") — the ERC-20 event topic.
const U256 kTransferTopic = U256::from_string(
    "0xddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef");

// keccak256("Approval(address,address,uint256)").
const U256 kApprovalTopic = U256::from_string(
    "0x8c5be1e5ebec7d5bd14f71427d1e84f3dd0314c0f7b2291e5b200ac8c7c3b925");

constexpr std::uint32_t kTransferFromSelector = 0x23b872dd;

void push_address(Assembler& a, const Address& address) {
  a.push_bytes(address.bytes());
}

}  // namespace

void emit_prelude(Assembler& a) {
  a.push(0x80).push(0x40).op(Op::kMstore);
}

void emit_revert(Assembler& a) {
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kRevert);
}

void emit_callvalue_guard(Assembler& a) {
  const Label ok = a.make_label();
  a.op(Op::kCallvalue).op(Op::kIszero);
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
}

void emit_return_word(Assembler& a) {
  a.push(0x80).op(Op::kMstore);
  a.push(0x20).push(0x80).op(Op::kReturn);
}

void emit_return_empty(Assembler& a) {
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kReturn);
}

void emit_load_selector(Assembler& a) {
  a.op(Op::kPush0).op(Op::kCalldataload).push(0xE0).op(Op::kShr);
}

void emit_metadata_trailer(Assembler& a, Rng& rng) {
  // solc appends CBOR metadata after an INVALID separator:
  //   0xfe a264 "ipfs" 5822 <34-byte multihash> 64 "solc" 43 <3-byte version>
  //   <2-byte length>
  a.raw(0xFE);
  a.raw(0xA2).raw(0x64);
  for (char c : {'i', 'p', 'f', 's'}) a.raw(static_cast<std::uint8_t>(c));
  a.raw(0x58).raw(0x22);
  for (int i = 0; i < 34; ++i) {
    a.raw(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  a.raw(0x64);
  for (char c : {'s', 'o', 'l', 'c'}) a.raw(static_cast<std::uint8_t>(c));
  a.raw(0x43);
  a.raw(0x00).raw(0x08).raw(static_cast<std::uint8_t>(17 + rng.next_below(10)));
  a.raw(0x00).raw(0x33);
}

void emit_mapping_slot_for_caller(Assembler& a, std::uint64_t slot) {
  // keccak256(abi.encode(caller, slot)) — solc's mapping layout.
  a.op(Op::kCaller).op(Op::kPush0).op(Op::kMstore);
  a.push(slot).push(0x20).op(Op::kMstore);
  a.push(0x40).op(Op::kPush0).op(Op::kSha3);
}

void emit_checked_add(Assembler& a) {
  // [a, b] -> [a + b], reverting on wrap (solc 0.8 checked arithmetic).
  const Label ok = a.make_label();
  a.op(Op::kDup2).op(Op::kAdd);           // [a, s]
  a.op(Op::kDup2).op(Op::kDup2).op(Op::kLt);  // s < a <=> overflow
  a.op(Op::kIszero);
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
  a.op(Op::kSwap1).op(Op::kPop);  // [s]
}

void emit_checked_sub(Assembler& a) {
  // [m, s] -> [m - s], reverting on underflow.
  const Label ok = a.make_label();
  a.op(Op::kDup2).op(Op::kDup2).op(Op::kGt);  // s > m <=> underflow
  a.op(Op::kIszero);
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
  a.op(Op::kSwap1).op(Op::kSub);  // SUB computes top - second == m - s
}

void emit_transfer_event(Assembler& a, Rng& rng) {
  // [amount] -> [] ; LOG3(Transfer, from=caller, to=caller-ish).
  a.push(0x80).op(Op::kMstore);
  if (rng.bernoulli(0.5)) {
    a.op(Op::kCaller);
  } else {
    push_address(a, random_address(rng));
  }
  a.op(Op::kCaller);
  a.push(rng.bernoulli(0.85) ? kTransferTopic : kApprovalTopic);
  a.push(0x20).push(0x80).op(Op::kLog3);
}

void emit_gas_check(Assembler& a, std::uint64_t min_gas) {
  const Label ok = a.make_label();
  a.op(Op::kGas).push(min_gas).op(Op::kLt);  // min < gas  <=> enough left
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
}

void emit_safe_external_call(Assembler& a, const Address& target) {
  // solc's external-call sequence: forward GAS (all remaining, post-check),
  // then branch on the success flag — the shape behind the paper's Fig. 9
  // observation that well-structured contracts touch GAS around calls.
  const Label ok = a.make_label();
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);  // ret/in
  a.op(Op::kPush0);                                               // value
  push_address(a, target);
  a.op(Op::kGas);
  a.op(Op::kCall);
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
}

void emit_getter_body(Assembler& a, std::uint64_t slot) {
  a.push(slot).op(Op::kSload);
  emit_return_word(a);
}

void emit_token_move_body(Assembler& a, Rng& rng, std::uint64_t slot) {
  a.push(0x04).op(Op::kCalldataload);     // [amt]
  emit_mapping_slot_for_caller(a, slot);  // [amt, slot]
  a.op(Op::kDup1).op(Op::kSload);         // [amt, slot, bal]
  a.op(Op::kDup3);                        // [amt, slot, bal, amt]
  emit_checked_sub(a);                    // [amt, slot, bal - amt]
  a.op(Op::kSwap1).op(Op::kSstore);       // [amt]
  emit_transfer_event(a, rng);            // []
  a.push(1);
  emit_return_word(a);
}

void emit_vault_withdraw_body(Assembler& a, Rng& rng,
                              std::uint64_t guard_slot) {
  // Reentrancy guard (check, set), explicit gas management, guarded call,
  // guard clear — the disciplined withdraw shape.
  const Label not_entered = a.make_label();
  a.push(guard_slot).op(Op::kSload).op(Op::kIszero);
  a.jump_if(not_entered);
  emit_revert(a);
  a.bind(not_entered);
  a.push(1).push(guard_slot).op(Op::kSstore);
  emit_gas_check(a, 2500 + rng.next_below(3000));
  emit_safe_external_call(a, random_address(rng));
  a.op(Op::kPush0).push(guard_slot).op(Op::kSstore);
  emit_return_empty(a);
}

void emit_benign_filler(Assembler& a, Rng& rng, int complexity) {
  for (int i = 0; i < complexity; ++i) {
    switch (rng.next_below(7)) {
      case 0:  // inlined pure arithmetic
        a.push(rng.next_below(1 << 16)).push(rng.next_below(1 << 16));
        a.op(rng.bernoulli(0.5) ? Op::kAdd : Op::kMul).op(Op::kPop);
        break;
      case 1:  // scratch memory traffic
        a.push(rng.next_below(1 << 24)).push(0xA0 + 0x20 * rng.next_below(4));
        a.op(Op::kMstore);
        break;
      case 2:  // time / block reads (vesting-style checks)
        a.op(rng.bernoulli(0.5) ? Op::kTimestamp : Op::kNumber);
        a.push(1700000000 + rng.next_below(40000000)).op(Op::kLt).op(Op::kPop);
        break;
      case 3:  // constant hash of a scratch word
        a.push(0x20).push(0x80).op(Op::kSha3).op(Op::kPop);
        break;
      case 4:  // masked shift chain (abi packing leftovers)
        a.push(rng.next_below(1 << 20)).push(8 * (1 + rng.next_below(8)));
        a.op(Op::kShl).push(0xFF).op(Op::kAnd).op(Op::kPop);
        break;
      case 5:  // hardcoded protocol address (router/WETH constants are
               // everywhere in legitimate DeFi code)
        push_address(a, random_address(rng));
        a.op(rng.bernoulli(0.5) ? Op::kExtcodesize : Op::kBalance);
        a.op(Op::kPop);
        break;
      default:  // comparison cascade
        a.op(Op::kCallvalue).op(Op::kIszero).op(Op::kIszero).op(Op::kPop);
        break;
    }
  }
}

void emit_cold_sweep_body(Assembler& a, Rng& rng, std::uint64_t wallet_slot) {
  // Nothing to do when the balance is zero.
  const Label has_funds = a.make_label();
  a.op(Op::kSelfbalance).op(Op::kIszero).op(Op::kIszero);
  a.jump_if(has_funds);
  emit_return_empty(a);
  a.bind(has_funds);
  emit_gas_check(a, 2300 + rng.next_below(3000));
  // CALL(cold_wallet, SELFBALANCE) with a success check.
  const Label ok = a.make_label();
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);  // ret/in
  a.op(Op::kSelfbalance);                                         // value
  a.push(wallet_slot).op(Op::kSload);                             // addr
  a.op(Op::kGas);
  a.op(Op::kCall);
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
  a.op(Op::kSelfbalance);  // emit the swept amount (now zero) in the event
  emit_transfer_event(a, rng);
  emit_return_empty(a);
}

void emit_sweep_balance(Assembler& a, const Address& owner, Rng& rng) {
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);
  a.op(Op::kSelfbalance);
  push_address(a, owner);
  if (rng.bernoulli(0.75)) {
    a.push(0x7530 + rng.next_below(0x80000));  // hardcoded gas, no management
  } else {
    a.op(Op::kGas);
  }
  a.op(Op::kCall).op(Op::kPop);  // success flag ignored
}

void emit_origin_gate(Assembler& a, const Address& owner,
                      Label continue_label) {
  a.op(Op::kOrigin);
  push_address(a, owner);
  a.op(Op::kEq);
  a.jump_if(continue_label);
}

void emit_approval_harvest(Assembler& a, const Address& token,
                           const Address& owner) {
  // calldata = transferFrom(caller -> owner, MAX_UINT256)
  a.push_selector(kTransferFromSelector);
  a.push(0xE0).op(Op::kShl).op(Op::kPush0).op(Op::kMstore);
  a.op(Op::kCaller).push(0x04).op(Op::kMstore);
  push_address(a, owner);
  a.push(0x24).op(Op::kMstore);
  a.push(U256::max()).push(0x44).op(Op::kMstore);
  a.push(0x20).push(0x80);        // ret
  a.push(0x64).op(Op::kPush0);    // in: 100 bytes at 0
  a.op(Op::kPush0);               // value
  push_address(a, token);
  a.push(0x30D40);                // hardcoded 200k gas — kit-style
  a.op(Op::kCall).op(Op::kPop);
}

void emit_selfdestruct_exit(Assembler& a, const Address& owner) {
  push_address(a, owner);
  a.op(Op::kSelfdestruct);
}

void emit_fake_claim_body(Assembler& a, Rng& rng, const Address& owner) {
  // Bait event so the wallet UI shows activity...
  U256 bait_topic;
  for (int i = 0; i < 4; ++i) {
    bait_topic = (bait_topic << 64) | U256(rng.next_u64());
  }
  a.push(bait_topic).op(Op::kPush0).op(Op::kPush0).op(Op::kLog1);
  // ...then quietly drain.
  emit_sweep_balance(a, owner, rng);
  emit_return_empty(a);
}

void emit_stealth_drain_body(Assembler& a, Rng& rng, const Address& owner) {
  emit_gas_check(a, 2300 + rng.next_below(3000));
  // "claimed[caller] = 1" bookkeeping, like a legitimate airdrop.
  a.push(1);
  emit_mapping_slot_for_caller(a, 16 + rng.next_below(8));
  a.op(Op::kSstore);
  // Guarded full-balance transfer to the owner, success-checked.
  const Label ok = a.make_label();
  a.op(Op::kPush0).op(Op::kPush0).op(Op::kPush0).op(Op::kPush0);  // ret/in
  a.op(Op::kSelfbalance);                                          // value
  push_address(a, owner);
  a.op(Op::kGas);
  a.op(Op::kCall);
  a.jump_if(ok);
  emit_revert(a);
  a.bind(ok);
  // A Transfer event so the victim's wallet renders a plausible claim.
  a.push(1 + rng.next_below(10000));
  emit_transfer_event(a, rng);
  emit_return_empty(a);
}

void emit_camouflage(Assembler& a, Rng& rng, double obfuscation) {
  if (rng.bernoulli(obfuscation)) {
    // Fake balance bookkeeping: mapping read (SHA3 + scratch MSTOREs).
    emit_mapping_slot_for_caller(a, rng.next_below(8));
    a.op(Op::kSload).op(Op::kPop);
  }
  if (rng.bernoulli(obfuscation)) {
    // Checked arithmetic over calldata, as an amount validation would do.
    a.push(0x04).op(Op::kCalldataload);
    a.push(0x24).op(Op::kCalldataload);
    emit_checked_add(a);
    a.op(Op::kPop);
  }
  if (rng.bernoulli(obfuscation)) {
    emit_gas_check(a, 2300 + rng.next_below(3000));
  }
  if (rng.bernoulli(obfuscation)) {
    // A real storage write: the drainer keeps "claimed[caller]" like a
    // legitimate airdrop would.
    a.push(1);
    emit_mapping_slot_for_caller(a, 16 + rng.next_below(8));
    a.op(Op::kSstore);
  }
  if (rng.bernoulli(obfuscation)) {
    emit_benign_filler(a, rng,
                       2 + static_cast<int>(rng.next_below(
                           2 + static_cast<std::uint64_t>(6.0 * obfuscation))));
  }
  if (rng.bernoulli(obfuscation * 0.8)) {
    a.push(1 + rng.next_below(1000));
    emit_transfer_event(a, rng);
  }
}

Bytecode minimal_proxy_runtime(const Address& implementation) {
  // ERC-1167: 363d3d373d3d3d363d73 <impl> 5af43d82803e903d91602b57fd5bf3
  std::vector<std::uint8_t> code = {0x36, 0x3d, 0x3d, 0x37, 0x3d,
                                    0x3d, 0x3d, 0x36, 0x3d, 0x73};
  code.insert(code.end(), implementation.bytes().begin(),
              implementation.bytes().end());
  const std::array<std::uint8_t, 15> suffix = {0x5a, 0xf4, 0x3d, 0x82, 0x80,
                                               0x3e, 0x90, 0x3d, 0x91, 0x60,
                                               0x2b, 0x57, 0xfd, 0x5b, 0xf3};
  code.insert(code.end(), suffix.begin(), suffix.end());
  return Bytecode(std::move(code));
}

std::uint32_t random_selector(Rng& rng) {
  std::uint32_t selector = 0;
  while (selector == 0) {
    selector = static_cast<std::uint32_t>(rng.next_u64());
  }
  return selector;
}

Address random_address(Rng& rng) {
  std::array<std::uint8_t, Address::kSize> bytes{};
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  if (bytes[0] == 0) bytes[0] = 0x7F;  // avoid precompile-range addresses
  return Address::from_bytes(bytes);
}

}  // namespace phishinghook::synth
