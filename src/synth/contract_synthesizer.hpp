// Synthetic contract generator.
//
// Emits executable Shanghai bytecode for two populations:
//
//   * BENIGN — compiler-shaped contracts (ERC-20 tokens, vaults, registries,
//     utilities): non-payable guards, selector dispatchers, checked
//     arithmetic, mapping-slot hashing, events, and explicit gas discipline
//     before external calls.
//   * PHISHING — the attack patterns of the paper's §II: "claim reward"
//     drainers that sweep the full balance to a hard-coded owner wallet,
//     approval harvesters issuing crafted transferFrom calls, fake tokens
//     with hidden owner withdrawals and SELFDESTRUCT exits, and ERC-1167
//     minimal-proxy clones (the source of bit-exact duplicates).
//
// Class overlap is deliberate and tunable: `obfuscation(month)` mixes benign
// boilerplate into phishing bodies (rising over the study window, which
// produces the temporal decay of Fig. 8), while `sloppy_benign_prob` emits
// legitimate-but-careless contracts that lack gas discipline. No single
// opcode separates the classes — the paper's Fig. 3 observation.
#pragma once

#include "chain/chain_store.hpp"
#include "common/rng.hpp"
#include "synth/assembler.hpp"
#include "synth/patterns.hpp"

namespace phishinghook::synth {

using chain::Month;

/// Template family of a generated contract (recorded for diagnostics).
enum class ContractFamily {
  // benign
  kToken,
  kVault,
  kRegistry,
  kUtility,
  kSweeperWallet,
  // phishing
  kClaimDrainer,
  kApprovalHarvester,
  kFakeToken,
  kStealthDrainer,
  kMinimalProxy,
};

std::string_view family_name(ContractFamily family);

/// Generator knobs. Defaults reproduce the dataset characteristics the
/// evaluation depends on; see DESIGN.md §3.4.
struct SynthConfig {
  /// Probability a benign contract skips gas discipline / guards.
  double sloppy_benign_prob = 0.22;
  /// Phishing obfuscation at month 0 (probability of each benign fragment
  /// being mixed into a phishing body)...
  double obfuscation_base = 0.30;
  /// ...plus this much more by the final month (drives temporal decay).
  double obfuscation_drift = 0.30;
  /// Probability a phishing body gates on tx.origin.
  double origin_gate_prob = 0.6;
  /// Share of phishing campaigns using the evolved "stealth drainer"
  /// template at month 0...
  double stealth_base = 0.05;
  /// ...growing by this much by the final month (the evolving-attack-
  /// patterns mechanism behind Fig. 8's decay).
  double stealth_drift = 0.35;
  /// Benign dispatcher size range (number of external functions).
  int benign_min_functions = 4;
  int benign_max_functions = 10;
  /// Phishing dispatcher size range.
  int phishing_min_functions = 2;
  int phishing_max_functions = 5;
  /// Filler complexity (per-function benign padding blocks).
  int max_filler = 6;
};

/// One generated contract: runtime code plus its provenance.
struct SynthContract {
  Bytecode runtime;
  ContractFamily family = ContractFamily::kUtility;
  bool phishing = false;
};

class ContractSynthesizer {
 public:
  explicit ContractSynthesizer(SynthConfig config = {}) : config_(config) {}

  /// A benign contract for `month`.
  SynthContract benign(Month month, Rng& rng) const;

  /// A phishing contract for `month`. `campaign_owner` is the wallet the
  /// drain pays out to (shared across a campaign's deployments).
  SynthContract phishing(Month month, Rng& rng,
                         const Address& campaign_owner) const;

  /// An ERC-1167 clone of `implementation` (bit-identical per impl).
  SynthContract minimal_proxy(const Address& implementation,
                              bool implementation_is_phishing) const;

  /// Wraps runtime code in a standard init frame (CODECOPY + RETURN), the
  /// form a CREATE transaction carries.
  static Bytecode wrap_init_code(const Bytecode& runtime);

  /// Effective phishing obfuscation probability for `month`.
  double obfuscation(Month month) const;

  /// Effective stealth-drainer share for `month`.
  double stealth_share(Month month) const;

  const SynthConfig& config() const { return config_; }

 private:
  SynthContract benign_token(Month month, Rng& rng) const;
  SynthContract benign_vault(Month month, Rng& rng) const;
  SynthContract benign_registry(Month month, Rng& rng) const;
  SynthContract benign_utility(Month month, Rng& rng) const;
  SynthContract benign_sweeper(Month month, Rng& rng) const;
  SynthContract phishing_claim_drainer(Month month, Rng& rng,
                                       const Address& owner) const;
  SynthContract phishing_approval_harvester(Month month, Rng& rng,
                                            const Address& owner) const;
  SynthContract phishing_fake_token(Month month, Rng& rng,
                                    const Address& owner) const;
  SynthContract phishing_stealth_drainer(Month month, Rng& rng,
                                         const Address& owner) const;

  SynthConfig config_;
};

}  // namespace phishinghook::synth
