// Bytecode fragments shared by the synthetic contract templates.
//
// Benign fragments mirror what solc emits for everyday Solidity: the
// free-memory-pointer prelude, selector dispatchers, checked (SafeMath-era)
// arithmetic, mapping-slot hashing, Transfer events, and explicit gas checks
// before external calls. Phishing fragments implement the attack patterns
// described in the paper's §II: full-balance sweeps to a hard-coded owner,
// tx.origin gating, approval harvesting via crafted transferFrom calldata,
// and fast exits via SELFDESTRUCT.
//
// Every fragment documents its net stack effect; templates compose them so
// the result executes cleanly on the interpreter.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "evm/address.hpp"
#include "synth/assembler.hpp"

namespace phishinghook::synth {

using common::Rng;
using evm::Address;

// --- shared scaffolding ------------------------------------------------------

/// PUSH1 0x80 PUSH1 0x40 MSTORE — the canonical solc prelude (the paper's
/// §III disassembly example). Stack: -.
void emit_prelude(Assembler& a);

/// Reverts if msg.value != 0 (non-payable guard solc puts on most
/// functions). Stack: -.
void emit_callvalue_guard(Assembler& a);

/// Emits `REVERT(0,0)`. Stack: -.
void emit_revert(Assembler& a);

/// Emits `RETURN` of the 32-byte word on top of the stack (via scratch
/// memory at 0x80). Stack: -1.
void emit_return_word(Assembler& a);

/// Emits `RETURN(0,0)` (empty successful return). Stack: -.
void emit_return_empty(Assembler& a);

/// Stores the selector of calldata on the stack:
/// CALLDATALOAD(0) >> 0xE0. Stack: +1.
void emit_load_selector(Assembler& a);

/// solc-style CBOR metadata trailer: INVALID, an ipfs-hash-like payload of
/// random bytes, the solc version stamp and the 2-byte length suffix.
/// Executable code must have ended before this is emitted.
void emit_metadata_trailer(Assembler& a, Rng& rng);

// --- benign (compiler-shaped) fragments -------------------------------------

/// keccak(caller ++ slot): the storage slot of mapping(address=>x)[caller].
/// Leaves the slot on the stack. Stack: +1.
void emit_mapping_slot_for_caller(Assembler& a, std::uint64_t slot);

/// Checked addition of the two top words (solc 0.8 overflow panic =>
/// revert). Stack: -1 (consumes two, leaves sum).
void emit_checked_add(Assembler& a);

/// Checked subtraction top = second - top, reverting on underflow.
/// Stack: -1.
void emit_checked_sub(Assembler& a);

/// Emits a Transfer(address,address,uint256)-shaped LOG3 with the amount on
/// top of the stack. Stack: -1.
void emit_transfer_event(Assembler& a, Rng& rng);

/// GAS >= threshold check before an external interaction; reverts when the
/// remaining gas is too low. This is the "well-structured contracts manage
/// gas explicitly" pattern the paper's SHAP analysis surfaces (Fig. 9).
/// Stack: -.
void emit_gas_check(Assembler& a, std::uint64_t min_gas);

/// A guarded external CALL to the address in `target` with no value and no
/// data, checking the success flag and reverting on failure. Stack: -.
void emit_safe_external_call(Assembler& a, const Address& target);

/// SLOAD(slot) and return it. Terminates the function body. Stack: -.
void emit_getter_body(Assembler& a, std::uint64_t slot);

/// A read-modify-write on balances[caller] with checked arithmetic and an
/// event — the body shape of ERC-20 transfer-like functions.
/// Terminates with RETURN(bool true). Stack: -.
void emit_token_move_body(Assembler& a, Rng& rng, std::uint64_t slot);

/// Reentrancy-guard + gas-checked withdraw body (vault template).
/// Terminates. Stack: -.
void emit_vault_withdraw_body(Assembler& a, Rng& rng, std::uint64_t guard_slot);

/// Benign filler: a few arithmetic/memory ops with no net stack effect,
/// shaped like inlined pure helpers. Stack: -.
void emit_benign_filler(Assembler& a, Rng& rng, int complexity);

/// A *legitimate* full-balance sweep: treasuries and payment splitters move
/// SELFBALANCE to a cold wallet read from storage, with gas discipline, a
/// success check and an event. Shares its opcode profile with the drain
/// patterns below — by design: no single opcode (SELFBALANCE, CALL) may
/// separate the classes (paper Fig. 3). Terminates. Stack: -.
void emit_cold_sweep_body(Assembler& a, Rng& rng, std::uint64_t wallet_slot);

// --- phishing fragments ------------------------------------------------------

/// Sends the whole contract balance to `owner` with no success check — the
/// fund-drain signature. Drain kits hardcode a generous gas constant more
/// often than they read GAS (they do not manage gas at all), which is what
/// makes *low* GAS usage a phishing tell (paper Fig. 9). Stack: -.
void emit_sweep_balance(Assembler& a, const Address& owner, Rng& rng);

/// Branches to `continue_label` only when tx.origin == owner; otherwise
/// falls through. tx.origin gating is a classic scam-contract tell.
/// Stack: -.
void emit_origin_gate(Assembler& a, const Address& owner, Label continue_label);

/// Crafts transferFrom(victim=CALLER, to=owner, amount) calldata in memory
/// and CALLs `token` with it — approval harvesting: the victim signed an
/// "approve" earlier on a fake dApp, and this sweeps the allowance.
/// Stack: -.
void emit_approval_harvest(Assembler& a, const Address& token,
                           const Address& owner);

/// SELFDESTRUCT to `owner` — the rug-pull fast exit. Terminates. Stack: -.
void emit_selfdestruct_exit(Assembler& a, const Address& owner);

/// A "claim reward" body: emits a bait event, then sweeps. Terminates with
/// an empty RETURN so wallets render success. Stack: -.
void emit_fake_claim_body(Assembler& a, Rng& rng, const Address& owner);

/// The evolved drain (late-window attack pattern): structurally identical
/// to the benign cold-storage sweep — gas discipline, success check,
/// bookkeeping SSTORE, Transfer event — except the destination is the
/// campaign's hard-coded owner wallet rather than a configured cold wallet.
/// Detectors trained on early months largely miss it, producing the
/// temporal decay of Fig. 8. Terminates. Stack: -.
void emit_stealth_drain_body(Assembler& a, Rng& rng, const Address& owner);

/// Camouflage: prepends benign-looking machinery to a phishing body with
/// per-fragment probability `obfuscation` — mapping-slot reads (SHA3 +
/// CALLDATALOAD), checked arithmetic, explicit gas checks, filler, fake
/// bookkeeping writes and events: exactly the fragments the classifiers key
/// on. This is the knob whose monthly drift drives Fig. 8's decay.
/// Stack: -.
void emit_camouflage(Assembler& a, Rng& rng, double obfuscation);

// --- well-known byte strings --------------------------------------------------

/// ERC-1167 minimal proxy runtime for `implementation` — 45 bytes,
/// bit-identical across clones of one implementation; the source of the
/// paper's 5x duplicate rate.
Bytecode minimal_proxy_runtime(const Address& implementation);

/// A plausible 4-byte selector (uniform random, excluding 0).
std::uint32_t random_selector(Rng& rng);

/// A random 20-byte address (campaign owner wallets, token targets...).
Address random_address(Rng& rng);

}  // namespace phishinghook::synth
