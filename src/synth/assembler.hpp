// A small EVM assembler.
//
// The synthetic corpus must be *real* EVM code — dispatchers that branch,
// drains that CALL, proxies that DELEGATECALL — so the generator builds
// bytecode through this assembler rather than concatenating opaque byte
// strings. Labels are resolved in a second pass (forward references emit a
// fixed-width PUSH2 that is patched in build()), which is also how solc lays
// out jump targets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "evm/bytecode.hpp"
#include "evm/opcodes.hpp"
#include "evm/uint256.hpp"

namespace phishinghook::synth {

using evm::Bytecode;
using evm::Op;
using evm::U256;

/// Opaque jump-target handle.
struct Label {
  std::size_t id = 0;
};

class Assembler {
 public:
  /// Appends a single opcode byte.
  Assembler& op(Op opcode);

  /// Appends a raw byte (used for metadata trailers and INVALID padding).
  Assembler& raw(std::uint8_t byte);

  /// Appends raw bytes verbatim.
  Assembler& raw_bytes(std::span<const std::uint8_t> bytes);

  /// PUSHn with the minimal width holding `value` (PUSH0 for zero).
  Assembler& push(const U256& value);
  Assembler& push(std::uint64_t value) { return push(U256(value)); }

  /// PUSHn with exactly `bytes.size()` immediate bytes (1..32).
  Assembler& push_bytes(std::span<const std::uint8_t> bytes);

  /// PUSH4 of a function selector — the dispatcher building block.
  Assembler& push_selector(std::uint32_t selector);

  /// Fresh unbound label.
  Label make_label();

  /// Binds `label` to the current position and emits JUMPDEST.
  Assembler& bind(Label label);

  /// PUSH2 <label>; patched to the label's offset in build().
  Assembler& push_label(Label label);

  /// push_label + JUMP / JUMPI.
  Assembler& jump(Label label);
  Assembler& jump_if(Label label);

  /// Current byte offset (next instruction position).
  std::size_t offset() const { return code_.size(); }

  /// Resolves labels and returns the finished bytecode. Throws StateError if
  /// any referenced label was never bound or lies beyond 0xFFFF.
  Bytecode build() const;

 private:
  struct Fixup {
    std::size_t at = 0;     // position of the PUSH2 immediate
    std::size_t label = 0;  // label id
  };

  std::vector<std::uint8_t> code_;
  std::vector<std::ptrdiff_t> label_offsets_;  // -1 while unbound
  std::vector<Fixup> fixups_;
};

}  // namespace phishinghook::synth
