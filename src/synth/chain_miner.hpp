// Streaming block producer: keeps the synthetic chain mining past the
// batch corpus, one block at a time, under the paper's deployment mix.
//
// The batch DatasetBuilder populates a whole study window up front; the
// streaming subsystem (src/stream) instead needs the chain to keep
// producing blocks while a follower tails it. ChainMiner is that producer:
// each mine_next_block() appends one ~12 s slot and deploys a
// Poisson-distributed number of contracts with the same campaign structure
// the dataset builder uses — phishing implementations trailed by armies of
// bit-identical ERC-1167 clones or verbatim redeploys (the ~5x raw:unique
// duplication of Fig. 2), benign contracts with occasional proxy farms of
// their own. Deployment content is a pure function of the seed and the
// call sequence, so a seeded streaming run is replayable deployment by
// deployment — the reproducible-accounting tests lean on this.
//
// Not thread-safe: the stream coordinator serializes miner and reader
// access behind one lock (see stream::LiveChain).
#pragma once

#include <cstdint>
#include <optional>

#include "chain/chain_store.hpp"
#include "chain/explorer.hpp"
#include "common/rng.hpp"
#include "synth/contract_synthesizer.hpp"

namespace phishinghook::synth {

struct MinerConfig {
  std::uint64_t seed = 7;
  /// Mean contract deployments per mined block (Poisson).
  double deployments_per_block = 3.0;
  /// Probability a fresh (non-campaign) deployment starts a phishing
  /// campaign rather than a benign contract.
  double phishing_fraction = 0.35;
  /// Mean raw:unique ratio for phishing campaigns (Fig. 2: ~5.0); drives
  /// how many bit-identical clones trail each implementation.
  double duplicate_rate = 5.0;
  /// Probability a benign deployment spawns a small proxy farm.
  double benign_proxy_prob = 0.12;
  SynthConfig synth;
};

struct MinerStats {
  std::uint64_t blocks_mined = 0;
  std::uint64_t deployments = 0;
  std::uint64_t phishing_deployments = 0;
  std::uint64_t benign_deployments = 0;
  std::uint64_t clone_deployments = 0;  ///< campaign followers (bit-identical)
  std::uint64_t campaigns_started = 0;
};

class ChainMiner {
 public:
  /// Borrows `chain` and `explorer` (the label write path); both must
  /// outlive the miner.
  ChainMiner(chain::ChainStore& chain, chain::Explorer& explorer,
             MinerConfig config = {});

  /// Appends one slot plus this block's deployments (each deployment
  /// occupies its own follow-up slot, matching ChainStore's journal
  /// semantics). Returns the new head block.
  std::uint64_t mine_next_block();

  const MinerStats& stats() const { return stats_; }
  const MinerConfig& config() const { return config_; }

 private:
  void deploy_one();
  void start_campaign();

  chain::ChainStore* chain_;
  chain::Explorer* explorer_;
  MinerConfig config_;
  ContractSynthesizer synth_;
  Rng rng_;
  MinerStats stats_;

  /// Active clone campaign: the next `remaining` deployments re-emit
  /// `runtime` verbatim. Clone armies arrive as bursts trailing their
  /// implementation, not as background noise — that burstiness is what
  /// makes the follower's dedup and the score cache earn their keep.
  struct Campaign {
    Bytecode runtime;
    bool phishing = false;
    int remaining = 0;
  };
  std::optional<Campaign> campaign_;
};

}  // namespace phishinghook::synth
