#include "synth/chain_miner.hpp"

namespace phishinghook::synth {

using chain::ContractFlag;
using chain::ContractRecord;

ChainMiner::ChainMiner(chain::ChainStore& chain, chain::Explorer& explorer,
                       MinerConfig config)
    : chain_(&chain),
      explorer_(&explorer),
      config_(config),
      synth_(config.synth),
      rng_(config.seed) {}

std::uint64_t ChainMiner::mine_next_block() {
  chain_->mine_next_block();
  stats_.blocks_mined += 1;
  const int deployments = rng_.poisson(config_.deployments_per_block);
  for (int i = 0; i < deployments; ++i) deploy_one();
  return chain_->head_block();
}

void ChainMiner::deploy_one() {
  stats_.deployments += 1;
  if (campaign_.has_value()) {
    // Campaign follower: one more bit-identical deployment of the active
    // runtime, flagged like its implementation.
    const Address deployer = random_address(rng_);
    const ContractRecord& record =
        chain_->register_contract(deployer, campaign_->runtime);
    if (campaign_->phishing) {
      explorer_->flag(record.address, ContractFlag::kPhishHack);
      stats_.phishing_deployments += 1;
    } else {
      stats_.benign_deployments += 1;
    }
    stats_.clone_deployments += 1;
    if (--campaign_->remaining <= 0) campaign_.reset();
    return;
  }
  start_campaign();
}

void ChainMiner::start_campaign() {
  const Month month = chain_->head_month();
  const Address deployer = random_address(rng_);
  if (rng_.bernoulli(config_.phishing_fraction)) {
    const Address owner = random_address(rng_);
    const SynthContract impl = synth_.phishing(month, rng_, owner);
    const ContractRecord& record =
        chain_->register_contract(deployer, impl.runtime);
    explorer_->flag(record.address, ContractFlag::kPhishHack);
    stats_.phishing_deployments += 1;
    const int clones =
        rng_.geometric(1.0 - 1.0 / config_.duplicate_rate, /*cap=*/24);
    if (clones > 0) {
      // Half the campaigns redeploy the drainer verbatim, half deploy an
      // ERC-1167 proxy army pointing at it — bit-identical either way.
      Campaign campaign;
      campaign.phishing = true;
      campaign.remaining = clones;
      campaign.runtime =
          rng_.bernoulli(0.5)
              ? synth_.minimal_proxy(record.address, /*implementation_is_phishing=*/true)
                    .runtime
              : impl.runtime;
      campaign_ = std::move(campaign);
      stats_.campaigns_started += 1;
    }
  } else {
    const SynthContract contract = synth_.benign(month, rng_);
    const ContractRecord& record =
        chain_->register_contract(deployer, contract.runtime);
    stats_.benign_deployments += 1;
    if (rng_.bernoulli(config_.benign_proxy_prob)) {
      // Duplicates exist on both sides: legitimate implementations get
      // proxy farms too (same shape the dataset builder emits).
      Campaign campaign;
      campaign.phishing = false;
      campaign.remaining = 1 + rng_.geometric(0.5, /*cap=*/6);
      campaign.runtime =
          synth_.minimal_proxy(record.address, /*implementation_is_phishing=*/false)
              .runtime;
      campaign_ = std::move(campaign);
      stats_.campaigns_started += 1;
    }
  }
}

}  // namespace phishinghook::synth
