#include "synth/assembler.hpp"

#include "common/errors.hpp"

namespace phishinghook::synth {

Assembler& Assembler::op(Op opcode) {
  code_.push_back(evm::op_byte(opcode));
  return *this;
}

Assembler& Assembler::raw(std::uint8_t byte) {
  code_.push_back(byte);
  return *this;
}

Assembler& Assembler::raw_bytes(std::span<const std::uint8_t> bytes) {
  code_.insert(code_.end(), bytes.begin(), bytes.end());
  return *this;
}

Assembler& Assembler::push(const U256& value) {
  const unsigned width = value.byte_length();
  if (width == 0) {
    code_.push_back(evm::op_byte(Op::kPush0));
    return *this;
  }
  code_.push_back(evm::push_opcode_for_size(width));
  const auto be = value.to_bytes_be();
  code_.insert(code_.end(), be.end() - width, be.end());
  return *this;
}

Assembler& Assembler::push_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.empty() || bytes.size() > 32) {
    throw InvalidArgument("push_bytes takes 1..32 bytes");
  }
  code_.push_back(evm::push_opcode_for_size(bytes.size()));
  code_.insert(code_.end(), bytes.begin(), bytes.end());
  return *this;
}

Assembler& Assembler::push_selector(std::uint32_t selector) {
  code_.push_back(evm::op_byte(Op::kPush4));
  for (int i = 3; i >= 0; --i) {
    code_.push_back(static_cast<std::uint8_t>(selector >> (8 * i)));
  }
  return *this;
}

Label Assembler::make_label() {
  label_offsets_.push_back(-1);
  return Label{label_offsets_.size() - 1};
}

Assembler& Assembler::bind(Label label) {
  if (label_offsets_.at(label.id) != -1) {
    throw StateError("label bound twice");
  }
  label_offsets_[label.id] = static_cast<std::ptrdiff_t>(code_.size());
  return op(Op::kJumpdest);
}

Assembler& Assembler::push_label(Label label) {
  code_.push_back(evm::op_byte(Op::kPush2));
  fixups_.push_back(Fixup{code_.size(), label.id});
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Assembler& Assembler::jump(Label label) {
  push_label(label);
  return op(Op::kJump);
}

Assembler& Assembler::jump_if(Label label) {
  push_label(label);
  return op(Op::kJumpi);
}

Bytecode Assembler::build() const {
  std::vector<std::uint8_t> out = code_;
  for (const Fixup& fixup : fixups_) {
    const std::ptrdiff_t target = label_offsets_.at(fixup.label);
    if (target < 0) throw StateError("jump to unbound label");
    if (target > 0xFFFF) throw StateError("label offset exceeds PUSH2 range");
    out[fixup.at] = static_cast<std::uint8_t>(target >> 8);
    out[fixup.at + 1] = static_cast<std::uint8_t>(target & 0xFF);
  }
  return Bytecode(std::move(out));
}

}  // namespace phishinghook::synth
