#include "core/experiment.hpp"

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phishinghook::core {

ml::Metrics ModelEvaluation::mean() const {
  std::vector<ml::Metrics> all;
  all.reserve(trials.size());
  for (const TrialResult& trial : trials) all.push_back(trial.metrics);
  return ml::mean_metrics(all);
}

double ModelEvaluation::mean_train_seconds() const {
  double total = 0.0;
  for (const TrialResult& trial : trials) total += trial.train_seconds;
  return trials.empty() ? 0.0 : total / static_cast<double>(trials.size());
}

double ModelEvaluation::mean_inference_seconds() const {
  double total = 0.0;
  for (const TrialResult& trial : trials) total += trial.inference_seconds;
  return trials.empty() ? 0.0 : total / static_cast<double>(trials.size());
}

std::vector<double> ModelEvaluation::metric_series(
    std::string_view metric) const {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const TrialResult& trial : trials) {
    if (metric == "accuracy") out.push_back(trial.metrics.accuracy);
    else if (metric == "f1") out.push_back(trial.metrics.f1);
    else if (metric == "precision") out.push_back(trial.metrics.precision);
    else if (metric == "recall") out.push_back(trial.metrics.recall);
    else throw InvalidArgument("unknown metric '" + std::string(metric) + "'");
  }
  return out;
}

std::vector<const Bytecode*> codes_of(
    const std::vector<LabeledContract>& samples) {
  std::vector<const Bytecode*> out;
  out.reserve(samples.size());
  for (const LabeledContract& sample : samples) out.push_back(&sample.code);
  return out;
}

std::vector<int> labels_of(const std::vector<LabeledContract>& samples) {
  std::vector<int> out;
  out.reserve(samples.size());
  for (const LabeledContract& sample : samples) {
    out.push_back(sample.phishing ? 1 : 0);
  }
  return out;
}

ModelEvaluation ExperimentHarness::evaluate(
    const ModelSpec& spec, const std::vector<LabeledContract>& samples) const {
  const std::vector<const Bytecode*> codes = codes_of(samples);
  const std::vector<int> labels = labels_of(samples);

  obs::ScopedSpan evaluate_span("experiment.evaluate", spec.name.c_str());
  // Per-model timing families on the process-wide registry; label
  // registration happens once per model name, outside the trial loop.
  auto& registry = obs::MetricsRegistry::global();
  const std::string model_label = obs::label("model", spec.name);
  obs::LatencyHistogram& fit_ms = registry.histogram("train_fit_ms", model_label);
  obs::LatencyHistogram& infer_ms = registry.histogram("infer_ms", model_label);
  obs::Counter trials_total = registry.counter("experiment_trials_total");

  ModelEvaluation evaluation;
  evaluation.model = spec.name;
  evaluation.category = spec.category;

  // Pre-draw the per-run fold splits and per-trial model seeds serially, in
  // the exact order the sequential loop consumed them; the (run, fold)
  // trials then execute as independent parallel tasks whose results land in
  // pre-assigned slots, so metrics are bit-identical at every thread count.
  // (Per-trial wall times reflect contended execution when several trials
  // share cores — CI runs single-core, where they match serial timing.)
  common::Rng run_rng(config_.seed);
  std::vector<std::vector<ml::Fold>> run_folds;
  std::vector<std::uint64_t> trial_seeds;
  run_folds.reserve(static_cast<std::size_t>(config_.runs));
  for (int run = 0; run < config_.runs; ++run) {
    common::Rng fold_rng = run_rng.fork();
    run_folds.push_back(ml::stratified_kfold(labels, config_.folds, fold_rng));
    for (int f = 0; f < config_.folds; ++f) {
      trial_seeds.push_back(run_rng.next_u64());
    }
  }

  const std::size_t folds_per_run = static_cast<std::size_t>(config_.folds);
  evaluation.trials = common::parallel_map<TrialResult>(
      trial_seeds.size(), [&](std::size_t t) {
        const std::size_t run = t / folds_per_run;
        const std::size_t f = t % folds_per_run;
        const ml::Fold& fold = run_folds[run][f];
        std::vector<const Bytecode*> train_codes, test_codes;
        std::vector<int> train_labels, test_labels;
        for (std::size_t i : fold.train_indices) {
          train_codes.push_back(codes[i]);
          train_labels.push_back(labels[i]);
        }
        for (std::size_t i : fold.test_indices) {
          test_codes.push_back(codes[i]);
          test_labels.push_back(labels[i]);
        }

        obs::ScopedSpan trial_span("experiment.trial", spec.name.c_str());
        auto model = spec.make(trial_seeds[t]);
        common::Timer train_timer;
        model->fit(train_codes, train_labels);
        const double train_seconds = train_timer.seconds();

        common::Timer inference_timer;
        const std::vector<int> predictions = model->predict(test_codes);
        const double inference_seconds = inference_timer.seconds();

        fit_ms.record(train_seconds * 1e3);
        infer_ms.record(inference_seconds * 1e3);
        trials_total.inc();

        TrialResult trial;
        trial.run = static_cast<int>(run);
        trial.fold = static_cast<int>(f);
        trial.metrics = ml::compute_metrics(test_labels, predictions);
        trial.train_seconds = train_seconds;
        trial.inference_seconds = inference_seconds;
        return trial;
      });

  for (const TrialResult& trial : evaluation.trials) {
    common::log_debug(spec.name, " run ", trial.run, " fold ", trial.fold,
                      " acc ", trial.metrics.accuracy);
  }
  return evaluation;
}

std::vector<ml::Metrics> ExperimentHarness::evaluate_temporal(
    const ModelSpec& spec, const std::vector<const LabeledContract*>& train,
    const std::vector<std::vector<const LabeledContract*>>& test_sets) const {
  std::vector<const Bytecode*> train_codes;
  std::vector<int> train_labels;
  for (const LabeledContract* sample : train) {
    train_codes.push_back(&sample->code);
    train_labels.push_back(sample->phishing ? 1 : 0);
  }
  auto model = spec.make(config_.seed);
  model->fit(train_codes, train_labels);

  std::vector<ml::Metrics> out;
  for (const auto& test_set : test_sets) {
    std::vector<const Bytecode*> test_codes;
    std::vector<int> test_labels;
    for (const LabeledContract* sample : test_set) {
      test_codes.push_back(&sample->code);
      test_labels.push_back(sample->phishing ? 1 : 0);
    }
    if (test_codes.empty()) {
      out.push_back(ml::Metrics{});
      continue;
    }
    out.push_back(ml::compute_metrics(test_labels, model->predict(test_codes)));
  }
  return out;
}

}  // namespace phishinghook::core
