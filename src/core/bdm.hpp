// Bytecode Disassembler Module (BDM) — Fig. 1-5/6.
//
// Wraps the Shanghai disassembler and persists listings as the .csv files
// the paper's downstream feature extractors read.
#pragma once

#include <filesystem>

#include "evm/disassembler.hpp"

namespace phishinghook::core {

class BytecodeDisassemblerModule {
 public:
  BytecodeDisassemblerModule() = default;

  /// Disassembles one contract.
  evm::Disassembly disassemble(const evm::Bytecode& code) const {
    return disassembler_.disassemble(code);
  }

  /// Disassembles and writes the pc/opcode/mnemonic/operand/gas CSV.
  evm::Disassembly disassemble_to_csv(const evm::Bytecode& code,
                                      const std::filesystem::path& path) const;

 private:
  evm::Disassembler disassembler_;
};

}  // namespace phishinghook::core
