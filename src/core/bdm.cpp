#include "core/bdm.hpp"

#include <fstream>

namespace phishinghook::core {

evm::Disassembly BytecodeDisassemblerModule::disassemble_to_csv(
    const evm::Bytecode& code, const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  // Stream the CSV off the single-pass walker; the returned listing is
  // still materialized for callers that inspect it, but the file write no
  // longer depends on it.
  disassembler_.write_csv(code, out);
  return disassembler_.disassemble(code);
}

}  // namespace phishinghook::core
