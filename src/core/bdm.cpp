#include "core/bdm.hpp"

#include <fstream>

namespace phishinghook::core {

evm::Disassembly BytecodeDisassemblerModule::disassemble_to_csv(
    const evm::Bytecode& code, const std::filesystem::path& path) const {
  evm::Disassembly listing = disassembler_.disassemble(code);
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  out << listing.to_csv();
  return listing;
}

}  // namespace phishinghook::core
