// Model Evaluation Module (MEM): the paper's evaluation protocol.
//
// Runs stratified k-fold cross-validation repeated over several runs
// (Table II: 10 folds x 3 runs = 30 trials per model), recording the four
// metrics plus wall-clock training and inference time per trial (Fig. 7).
#pragma once

#include "core/model_registry.hpp"
#include "ml/cross_validation.hpp"
#include "synth/dataset_builder.hpp"

namespace phishinghook::core {

using synth::LabeledContract;

/// One trial = one (run, fold) evaluation.
struct TrialResult {
  int run = 0;
  int fold = 0;
  ml::Metrics metrics;
  double train_seconds = 0.0;
  double inference_seconds = 0.0;  ///< whole test batch
};

struct ModelEvaluation {
  std::string model;
  ModelCategory category = ModelCategory::kHistogram;
  std::vector<TrialResult> trials;

  ml::Metrics mean() const;
  double mean_train_seconds() const;
  double mean_inference_seconds() const;
  /// All values of one metric across trials (PAM input).
  std::vector<double> metric_series(std::string_view metric) const;
};

struct ExperimentConfig {
  int folds = 5;
  int runs = 2;
  std::uint64_t seed = 1234;
};

class ExperimentHarness {
 public:
  explicit ExperimentHarness(ExperimentConfig config = {}) : config_(config) {}

  /// Cross-validates `spec` on `samples`.
  ModelEvaluation evaluate(const ModelSpec& spec,
                           const std::vector<LabeledContract>& samples) const;

  /// Trains on `train` and evaluates on each test set (the Fig. 8 protocol).
  /// Returns the metric bundle per test set.
  std::vector<ml::Metrics> evaluate_temporal(
      const ModelSpec& spec, const std::vector<const LabeledContract*>& train,
      const std::vector<std::vector<const LabeledContract*>>& test_sets) const;

  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
};

/// Convenience views over a sample set.
std::vector<const Bytecode*> codes_of(
    const std::vector<LabeledContract>& samples);
std::vector<int> labels_of(const std::vector<LabeledContract>& samples);

}  // namespace phishinghook::core
