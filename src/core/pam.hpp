// Post hoc Analysis Module (PAM) — Fig. 1-8.
//
// Reproduces the paper's §IV-E decision flow over the MEM's trial results:
//   1. Shapiro-Wilk normality per (model, metric) distribution;
//   2. Kruskal-Wallis across models per metric (Table III), p Holm-adjusted
//      across the four metrics;
//   3. Dunn's test with Holm-Bonferroni for pairwise divergence (Fig. 4),
//      with within/cross-category significant-pair fractions.
#pragma once

#include <array>

#include "core/experiment.hpp"
#include "stats/dunn.hpp"
#include "stats/kruskal_wallis.hpp"
#include "stats/shapiro_wilk.hpp"

namespace phishinghook::core {

inline constexpr std::array<std::string_view, 4> kMetricNames = {
    "accuracy", "f1", "precision", "recall"};

struct NormalityEntry {
  std::string model;
  std::string metric;
  double w = 0.0;
  double p_value = 1.0;
  bool normal = true;  ///< p >= 0.05
};

struct MetricKruskalWallis {
  std::string metric;
  double h = 0.0;
  double p = 1.0;
  double p_adjusted = 1.0;
};

struct MetricDunn {
  std::string metric;
  stats::DunnResult result;
  double significant_fraction = 0.0;
  double within_category_fraction = 0.0;
  double cross_category_fraction = 0.0;
};

struct PostHocReport {
  std::vector<NormalityEntry> normality;
  std::size_t non_normal_pairs = 0;  ///< the paper found 20 / 52
  std::vector<MetricKruskalWallis> kruskal_wallis;  ///< Table III rows
  std::vector<MetricDunn> dunn;                     ///< Fig. 4 matrices
};

/// Runs the full PAM over per-model trial results. Models with degenerate
/// (constant) metric samples keep a normality entry with w = 1, p = 1.
PostHocReport post_hoc_analysis(const std::vector<ModelEvaluation>& models);

}  // namespace phishinghook::core
