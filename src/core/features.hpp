// Feature extraction: bytecode -> the four representations the paper's
// model families consume.
//
//  * Opcode histograms (HSC): counts per mnemonic over a vocabulary built
//    on the training set only [54].
//  * R2D2 images (ViT+R2D2, ECA+EfficientNet): raw bytes read as RGB color
//    components, arranged into a square tensor, zero-padded [44].
//  * Frequency images (ViT+Freq): per-instruction pixels whose R/G/B encode
//    the training-set frequency of the mnemonic, operand and gas value.
//  * Token sequences: 3-byte n-grams over the hex string (SCSGuard) and raw
//    byte tokens (GPT-2, T5, ESCORT).
//
// Everything learned (vocabularies, lookup tables) is fit on the training
// split of each fold and only applied to the test split — the paper's "the
// lookup table is constructed exactly once on the entire contract training
// set" discipline.
//
// Fast path (DESIGN.md §10): the mnemonic, static gas cost and immediate
// width are pure functions of the opcode byte, so both histogram and
// frequency transforms are compiled into 256-entry byte->value lookup
// tables at fit time and applied in a single allocation-free pass over the
// raw bytes. The original Disassembly+string implementations are kept as
// `*_legacy` oracles; tests/test_features_fast.cpp asserts bit-identical
// outputs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "evm/bytecode.hpp"
#include "evm/disassembler.hpp"
#include "ml/matrix.hpp"
#include "ml/models/sequence_model.hpp"
#include "ml/nn/tensor.hpp"

namespace phishinghook::core {

using evm::Bytecode;
using ml::models::TokenSequence;

namespace detail {

/// Hash for U256 operand keys (mixes the four limbs).
struct U256Hash {
  std::size_t operator()(const evm::U256& value) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t limb : value.limbs()) {
      h ^= limb + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Hash for code-hash keys; leading keccak bytes are uniform already.
struct CodeHashHash {
  std::size_t operator()(const evm::Hash256& hash) const {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(hash[static_cast<std::size_t>(i)])
           << (8 * i);
    }
    return static_cast<std::size_t>(v);
  }
};

}  // namespace detail

// --- opcode histograms -------------------------------------------------------

/// Mnemonic vocabulary learned from a training corpus.
///
/// Because every opcode byte maps to exactly one mnemonic (defined opcodes
/// via the Shanghai table, undefined bytes via UNKNOWN_0xXX), the fitted
/// vocabulary compiles to a byte->column table and `transform` runs as one
/// pass over raw bytes — no Disassembly, no strings, no per-call
/// allocation beyond the output vector (`transform_into` avoids even that).
class HistogramVocabulary {
 public:
  /// Codes at least this large count opcodes through the banked integer
  /// histogram (SIMD bank merge); smaller codes accumulate doubles
  /// directly — the bank zero/merge overhead would outweigh their walk.
  /// Both paths produce bit-identical counts (exact small integers).
  static constexpr std::size_t kBankedHistogramBytes = 4096;

  HistogramVocabulary() { byte_column_.fill(-1); }

  /// Collects every mnemonic present in `corpus` (first-seen order),
  /// streaming over Disassembler::for_each.
  void fit(const std::vector<const Bytecode*>& corpus);

  /// Restores a fitted vocabulary from its mnemonic list (artifact load
  /// path). Order is the feature order.
  static HistogramVocabulary from_mnemonics(std::vector<std::string> mnemonics);

  /// Count vector (length = vocabulary size); unseen mnemonics are dropped,
  /// as a scikit-learn CountVectorizer would.
  std::vector<double> transform(const Bytecode& code) const;

  /// Allocation-free transform into a caller-reusable buffer of exactly
  /// size() doubles (zeroed by the call). Throws InvalidArgument on a
  /// size mismatch. Safe to call concurrently (read-only state).
  void transform_into(const Bytecode& code, std::span<double> out) const;

  /// The original Disassembly + string-lookup implementation, kept as the
  /// equivalence oracle for the LUT fast path.
  std::vector<double> transform_legacy(const Bytecode& code) const;

  /// Histogram matrix for a corpus; rows are independent and processed in
  /// parallel on the common::ThreadPool (bit-identical at every thread
  /// count — each row is written by exactly one task).
  ml::Matrix transform_all(const std::vector<const Bytecode*>& corpus) const;

  const std::vector<std::string>& mnemonics() const { return mnemonics_; }
  std::size_t size() const { return mnemonics_.size(); }

 private:
  /// Recomputes byte_column_ from index_ (fit and from_mnemonics paths).
  void rebuild_lut();

  std::vector<std::string> mnemonics_;
  std::map<std::string, std::size_t> index_;
  /// byte -> feature column, -1 when the byte's mnemonic is out of
  /// vocabulary.
  std::array<std::int32_t, 256> byte_column_{};
};

// --- R2D2 images --------------------------------------------------------------

/// Bytes -> [3, side, side] tensor: consecutive bytes fill the R, G and B
/// components of consecutive pixels; shorter codes are zero-padded, longer
/// ones truncated (the paper pads to 224x224; side is CPU-scaled here).
/// Values are normalized to [0, 1].
ml::nn::Tensor r2d2_image(const Bytecode& code, std::size_t side);

// --- frequency images ----------------------------------------------------------

/// The ViT+Freq lookup table: normalized appearance frequencies of
/// mnemonics, operand values and gas costs over the training set.
///
/// Fast path: the R (mnemonic) and B (gas) channels are pure functions of
/// the opcode byte and compile to 256-entry intensity tables; the G
/// (operand) channel is keyed by the PUSH immediate *value* instead of its
/// hex string. fit() additionally interns the per-code pixel stream for
/// the fitted corpus, so transform() on a training code is a cache copy
/// instead of a re-disassembly.
class FrequencyEncoder {
 public:
  void fit(const std::vector<const Bytecode*>& corpus);

  /// Per-instruction pixels: R = mnemonic frequency, G = operand frequency,
  /// B = gas frequency; zero-padded / truncated to [3, side, side].
  ml::nn::Tensor transform(const Bytecode& code, std::size_t side) const;

  /// The original Disassembly + string-lookup implementation (oracle).
  ml::nn::Tensor transform_legacy(const Bytecode& code,
                                  std::size_t side) const;

 private:
  double mnemonic_freq(std::string_view mnemonic) const;
  double operand_freq(const std::string& operand_key) const;
  double gas_freq(std::uint32_t gas) const;
  /// G-channel intensity of one streamed instruction (fast path).
  double operand_channel(const evm::InstructionView& view) const;

  evm::Disassembler disassembler_;
  // Legacy string/gas-keyed tables (oracle + any external consumers).
  std::map<std::string, double> mnemonic_table_;
  std::map<std::string, double> operand_table_;
  std::map<std::uint32_t, double> gas_table_;
  // Compiled fast-path state.
  std::array<double, 256> mnemonic_lut_{};  ///< byte -> R intensity
  std::array<double, 256> gas_lut_{};       ///< byte -> B intensity
  std::unordered_map<evm::U256, double, detail::U256Hash>
      operand_value_table_;  ///< PUSH immediate value -> G intensity
  double dash_freq_ = 0.0;   ///< G intensity of operand-less instructions
  /// Interned per-code pixel streams for the fitted corpus, keyed by code
  /// hash (computed once per fit pass).
  std::unordered_map<evm::Hash256, std::vector<std::array<float, 3>>,
                     detail::CodeHashHash>
      fit_cache_;
};

// --- token sequences ------------------------------------------------------------

/// SCSGuard's n-gram tokenizer: the bytecode hex string is read as
/// non-overlapping 6-hex-character (3-byte) grams; the `vocab_size - 1`
/// most frequent grams in the training set get ids 1.., everything else
/// maps to the UNK id 0.
class NgramTokenizer {
 public:
  explicit NgramTokenizer(std::size_t vocab_size = 4096)
      : vocab_size_(vocab_size) {}

  void fit(const std::vector<const Bytecode*>& corpus);
  TokenSequence transform(const Bytecode& code) const;
  std::size_t vocab_size() const { return vocab_size_; }

 private:
  static std::uint32_t gram_at(const Bytecode& code, std::size_t offset);

  std::size_t vocab_size_;
  std::unordered_map<std::uint32_t, std::size_t> gram_ids_;
};

/// Raw byte tokens (GPT-2 / T5 / ESCORT): ids 0..255; empty codes yield a
/// single pad token 256.
TokenSequence byte_tokens(const Bytecode& code);

/// Vocabulary size for byte tokens (256 + 1 pad).
constexpr std::size_t kByteVocab = 257;

}  // namespace phishinghook::core
