// Feature extraction: bytecode -> the four representations the paper's
// model families consume.
//
//  * Opcode histograms (HSC): counts per mnemonic over a vocabulary built
//    on the training set only [54].
//  * R2D2 images (ViT+R2D2, ECA+EfficientNet): raw bytes read as RGB color
//    components, arranged into a square tensor, zero-padded [44].
//  * Frequency images (ViT+Freq): per-instruction pixels whose R/G/B encode
//    the training-set frequency of the mnemonic, operand and gas value.
//  * Token sequences: 3-byte n-grams over the hex string (SCSGuard) and raw
//    byte tokens (GPT-2, T5, ESCORT).
//
// Everything learned (vocabularies, lookup tables) is fit on the training
// split of each fold and only applied to the test split — the paper's "the
// lookup table is constructed exactly once on the entire contract training
// set" discipline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "evm/bytecode.hpp"
#include "evm/disassembler.hpp"
#include "ml/matrix.hpp"
#include "ml/models/sequence_model.hpp"
#include "ml/nn/tensor.hpp"

namespace phishinghook::core {

using evm::Bytecode;
using ml::models::TokenSequence;

// --- opcode histograms -------------------------------------------------------

/// Mnemonic vocabulary learned from a training corpus.
class HistogramVocabulary {
 public:
  /// Collects every mnemonic present in `corpus` (first-seen order).
  void fit(const std::vector<const Bytecode*>& corpus);

  /// Restores a fitted vocabulary from its mnemonic list (artifact load
  /// path). Order is the feature order.
  static HistogramVocabulary from_mnemonics(std::vector<std::string> mnemonics);

  /// Count vector (length = vocabulary size); unseen mnemonics are dropped,
  /// as a scikit-learn CountVectorizer would.
  std::vector<double> transform(const Bytecode& code) const;

  /// Histogram matrix for a corpus.
  ml::Matrix transform_all(const std::vector<const Bytecode*>& corpus) const;

  const std::vector<std::string>& mnemonics() const { return mnemonics_; }
  std::size_t size() const { return mnemonics_.size(); }

 private:
  std::vector<std::string> mnemonics_;
  std::map<std::string, std::size_t> index_;
};

// --- R2D2 images --------------------------------------------------------------

/// Bytes -> [3, side, side] tensor: consecutive bytes fill the R, G and B
/// components of consecutive pixels; shorter codes are zero-padded, longer
/// ones truncated (the paper pads to 224x224; side is CPU-scaled here).
/// Values are normalized to [0, 1].
ml::nn::Tensor r2d2_image(const Bytecode& code, std::size_t side);

// --- frequency images ----------------------------------------------------------

/// The ViT+Freq lookup table: normalized appearance frequencies of
/// mnemonics, operand values and gas costs over the training set.
class FrequencyEncoder {
 public:
  void fit(const std::vector<const Bytecode*>& corpus);

  /// Per-instruction pixels: R = mnemonic frequency, G = operand frequency,
  /// B = gas frequency; zero-padded / truncated to [3, side, side].
  ml::nn::Tensor transform(const Bytecode& code, std::size_t side) const;

 private:
  double mnemonic_freq(std::string_view mnemonic) const;
  double operand_freq(const std::string& operand_key) const;
  double gas_freq(std::uint32_t gas) const;

  evm::Disassembler disassembler_;
  std::map<std::string, double> mnemonic_table_;
  std::map<std::string, double> operand_table_;
  std::map<std::uint32_t, double> gas_table_;
};

// --- token sequences ------------------------------------------------------------

/// SCSGuard's n-gram tokenizer: the bytecode hex string is read as
/// non-overlapping 6-hex-character (3-byte) grams; the `vocab_size - 1`
/// most frequent grams in the training set get ids 1.., everything else
/// maps to the UNK id 0.
class NgramTokenizer {
 public:
  explicit NgramTokenizer(std::size_t vocab_size = 4096)
      : vocab_size_(vocab_size) {}

  void fit(const std::vector<const Bytecode*>& corpus);
  TokenSequence transform(const Bytecode& code) const;
  std::size_t vocab_size() const { return vocab_size_; }

 private:
  static std::uint32_t gram_at(const Bytecode& code, std::size_t offset);

  std::size_t vocab_size_;
  std::map<std::uint32_t, std::size_t> gram_ids_;
};

/// Raw byte tokens (GPT-2 / T5 / ESCORT): ids 0..255; empty codes yield a
/// single pad token 256.
TokenSequence byte_tokens(const Bytecode& code);

/// Vocabulary size for byte tokens (256 + 1 pad).
constexpr std::size_t kByteVocab = 257;

}  // namespace phishinghook::core
