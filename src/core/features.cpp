#include "core/features.hpp"

#include <algorithm>
#include <cstdint>

#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phishinghook::core {

namespace {

/// byte -> bytes to skip after the opcode (declared PUSH immediate width).
/// Pure function of the Shanghai table; shared by every fast-path scan.
const std::array<std::uint8_t, 256>& immediate_width_lut() {
  static const std::array<std::uint8_t, 256> lut = [] {
    std::array<std::uint8_t, 256> out{};
    const evm::OpcodeTable& table = evm::OpcodeTable::shanghai();
    for (std::size_t b = 0; b < 256; ++b) {
      const evm::OpcodeInfo* info = table.find(static_cast<std::uint8_t>(b));
      out[b] = info != nullptr ? info->immediate_bytes : 0;
    }
    return out;
  }();
  return lut;
}

/// The declared PUSH immediate width as pure arithmetic: PUSH1..PUSH32
/// are the contiguous bytes 0x60..0x7f skipping 1..32 operand bytes;
/// everything else (including 0x5f PUSH0) skips none. Keeping this out
/// of a table removes the dependent LUT load from the scan's
/// `pc += 1 + skip` critical path.
inline std::size_t arithmetic_push_skip(std::uint8_t byte) {
  return static_cast<std::uint8_t>(byte - 0x60) < 32
             ? static_cast<std::size_t>(byte) - 0x5f
             : 0;
}

/// Verified once at first use: the arithmetic skip must agree with the
/// Shanghai opcode table for every byte. If a future table revision adds
/// immediates outside the PUSH range, the scan falls back to the LUT.
bool arithmetic_skip_matches_table() {
  static const bool matches = [] {
    const std::array<std::uint8_t, 256>& lut = immediate_width_lut();
    for (std::size_t b = 0; b < 256; ++b) {
      if (arithmetic_push_skip(static_cast<std::uint8_t>(b)) != lut[b]) {
        return false;
      }
    }
    return true;
  }();
  return matches;
}

/// Fast-path volume counters + the transform_all latency histogram.
struct FeatureInstruments {
  obs::Counter rows = obs::MetricsRegistry::global().counter(
      "features_rows_transformed_total");
  obs::Counter bytes = obs::MetricsRegistry::global().counter(
      "features_bytes_scanned_total");
  obs::LatencyHistogram& transform_all_us =
      obs::MetricsRegistry::global().histogram("features_transform_all_us");
};

FeatureInstruments& feature_instruments() {
  static FeatureInstruments instruments;
  return instruments;
}

}  // namespace

// --- HistogramVocabulary -----------------------------------------------------

void HistogramVocabulary::fit(const std::vector<const Bytecode*>& corpus) {
  obs::ScopedSpan span("features.vocab_fit");
  mnemonics_.clear();
  index_.clear();
  byte_column_.fill(-1);
  // Opcode byte <-> mnemonic is a bijection (defined opcodes via the table,
  // undefined bytes via UNKNOWN_0xXX), so first-seen-byte order equals the
  // legacy first-seen-mnemonic order and the dedup set is a 256-entry
  // array instead of a string map.
  const evm::Disassembler disassembler;
  for (const Bytecode* code : corpus) {
    disassembler.for_each(*code, [&](const evm::InstructionView& view) {
      std::int32_t& column = byte_column_[view.opcode];
      if (column < 0) {
        column = static_cast<std::int32_t>(mnemonics_.size());
        mnemonics_.push_back(std::string(view.mnemonic()));
      }
    });
  }
  for (std::size_t i = 0; i < mnemonics_.size(); ++i) {
    index_.emplace(mnemonics_[i], i);
  }
}

HistogramVocabulary HistogramVocabulary::from_mnemonics(
    std::vector<std::string> mnemonics) {
  HistogramVocabulary vocabulary;
  vocabulary.mnemonics_ = std::move(mnemonics);
  for (std::size_t i = 0; i < vocabulary.mnemonics_.size(); ++i) {
    vocabulary.index_.emplace(vocabulary.mnemonics_[i], i);
  }
  vocabulary.rebuild_lut();
  return vocabulary;
}

void HistogramVocabulary::rebuild_lut() {
  byte_column_.fill(-1);
  const evm::OpcodeTable& table = evm::OpcodeTable::shanghai();
  for (std::size_t b = 0; b < 256; ++b) {
    const evm::OpcodeInfo* info = table.find(static_cast<std::uint8_t>(b));
    const std::string_view name = info != nullptr
                                      ? info->mnemonic
                                      : evm::unknown_mnemonic(
                                            static_cast<std::uint8_t>(b));
    const auto it = index_.find(std::string(name));
    if (it != index_.end()) {
      byte_column_[b] = static_cast<std::int32_t>(it->second);
    }
  }
}

void HistogramVocabulary::transform_into(const Bytecode& code,
                                         std::span<double> out) const {
  if (out.size() != mnemonics_.size()) {
    throw InvalidArgument("HistogramVocabulary::transform_into buffer size " +
                          std::to_string(out.size()) + " != vocabulary size " +
                          std::to_string(mnemonics_.size()));
  }
  std::fill(out.begin(), out.end(), 0.0);
  const std::vector<std::uint8_t>& bytes = code.bytes();
  const std::uint8_t* data = bytes.data();
  const std::size_t n = bytes.size();
  const bool arithmetic_skip = arithmetic_skip_matches_table();
  if (n >= kBankedHistogramBytes && arithmetic_skip) {
    // Large codes: integer opcode histogram in four banks — consecutive
    // occurrences of the same opcode land on different counters, so the
    // increment never stalls on a store-to-load forward of the previous
    // iteration. The pc chase itself is the serial dependency; the
    // arithmetic PUSH skip keeps it a one-add chain instead of a load.
    std::uint32_t banks[4][256] = {};
    std::size_t pc = 0;
    std::size_t lane = 0;
    while (pc < n) {
      const std::uint8_t byte = data[pc];
      ++banks[lane & 3][byte];
      ++lane;
      pc += 1 + arithmetic_push_skip(byte);
    }
    // Bank merge is a straight vectorizable sum; the final scatter through
    // byte_column_ converts each exact integer count to its double (the
    // legacy path summed 1.0 per instruction — identical values).
    std::uint32_t counts[256];
    PHISHINGHOOK_SIMD
    for (std::size_t b = 0; b < 256; ++b) {
      counts[b] = banks[0][b] + banks[1][b] + banks[2][b] + banks[3][b];
    }
    for (std::size_t b = 0; b < 256; ++b) {
      const std::int32_t column = byte_column_[b];
      if (counts[b] != 0 && column >= 0) {
        out[static_cast<std::size_t>(column)] +=
            static_cast<double>(counts[b]);
      }
    }
  } else if (arithmetic_skip) {
    // Small codes: the ~1.5 KB of bank zero/merge would outweigh the walk
    // itself, so accumulate straight into the output doubles (sums of 1.0
    // — the same values the banked path produces).
    std::size_t pc = 0;
    while (pc < n) {
      const std::uint8_t byte = data[pc];
      const std::int32_t column = byte_column_[byte];
      if (column >= 0) out[static_cast<std::size_t>(column)] += 1.0;
      pc += 1 + arithmetic_push_skip(byte);
    }
  } else {
    // Table fallback: a revised opcode table added immediates outside the
    // PUSH range, so honor the LUT.
    const std::array<std::uint8_t, 256>& skip = immediate_width_lut();
    std::size_t pc = 0;
    while (pc < n) {
      const std::uint8_t byte = data[pc];
      const std::int32_t column = byte_column_[byte];
      if (column >= 0) out[static_cast<std::size_t>(column)] += 1.0;
      pc += 1 + static_cast<std::size_t>(skip[byte]);
    }
  }
  FeatureInstruments& instruments = feature_instruments();
  instruments.rows.inc();
  instruments.bytes.inc(n);
}

std::vector<double> HistogramVocabulary::transform(const Bytecode& code) const {
  std::vector<double> counts(mnemonics_.size(), 0.0);
  transform_into(code, counts);
  return counts;
}

std::vector<double> HistogramVocabulary::transform_legacy(
    const Bytecode& code) const {
  std::vector<double> counts(mnemonics_.size(), 0.0);
  const evm::Disassembler disassembler;
  const evm::Disassembly listing = disassembler.disassemble(code);
  for (const evm::Instruction& ins : listing.instructions) {
    const auto it = index_.find(std::string(ins.mnemonic));
    if (it != index_.end()) counts[it->second] += 1.0;
  }
  return counts;
}

ml::Matrix HistogramVocabulary::transform_all(
    const std::vector<const Bytecode*>& corpus) const {
  obs::ScopedSpan span("features.transform_all");
  common::ScopedTimer timer([](double seconds) {
    feature_instruments().transform_all_us.record(seconds * 1e6);
  });
  ml::Matrix out(corpus.size(), mnemonics_.size());
  // Rows are independent and each is written by exactly one task directly
  // into its Matrix row, so the result is bit-identical at every thread
  // count (asserted in tests/test_parallel_determinism.cpp).
  common::parallel_for_chunks(
      corpus.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          transform_into(*corpus[r], out.row(r));
        }
      });
  return out;
}

// --- R2D2 images ----------------------------------------------------------------

ml::nn::Tensor r2d2_image(const Bytecode& code, std::size_t side) {
  ml::nn::Tensor image({3, side, side});
  const auto& bytes = code.bytes();
  const std::size_t pixels = side * side;
  for (std::size_t p = 0; p < pixels; ++p) {
    for (std::size_t channel = 0; channel < 3; ++channel) {
      const std::size_t byte_index = p * 3 + channel;
      if (byte_index >= bytes.size()) return image;  // zero padding
      image.at3(channel, p / side, p % side) =
          static_cast<float>(bytes[byte_index]) / 255.0F;
    }
  }
  return image;
}

// --- FrequencyEncoder -------------------------------------------------------------

namespace {
std::string operand_key_of(const evm::Instruction& ins) {
  return ins.operand.has_value() ? ins.operand->to_hex() : "-";
}

/// The mnemonic an opcode byte always disassembles to.
std::string_view mnemonic_of_byte(std::uint8_t byte) {
  const evm::OpcodeInfo* info = evm::OpcodeTable::shanghai().find(byte);
  return info != nullptr ? info->mnemonic : evm::unknown_mnemonic(byte);
}

/// The static gas an opcode byte always disassembles to (0 for undefined).
std::uint32_t gas_of_byte(std::uint8_t byte) {
  const evm::OpcodeInfo* info = evm::OpcodeTable::shanghai().find(byte);
  return info != nullptr ? info->base_gas : 0;
}
}  // namespace

void FrequencyEncoder::fit(const std::vector<const Bytecode*>& corpus) {
  obs::ScopedSpan span("features.freq_fit");
  mnemonic_table_.clear();
  operand_table_.clear();
  gas_table_.clear();
  operand_value_table_.clear();
  fit_cache_.clear();
  mnemonic_lut_.fill(0.0);
  gas_lut_.fill(0.0);
  dash_freq_ = 0.0;

  // Pass 1: stream every code once. Mnemonic and gas counts accumulate into
  // a 256-entry array (both are pure functions of the byte); operand counts
  // accumulate into a value-keyed hash table reserved up front — no string
  // keys, no per-instruction allocation.
  std::array<double, 256> byte_counts{};
  std::unordered_map<evm::U256, double, detail::U256Hash> operand_counts;
  std::size_t corpus_bytes = 0;
  for (const Bytecode* code : corpus) corpus_bytes += code->size();
  operand_counts.reserve(std::max<std::size_t>(corpus_bytes / 8, 64));
  double dash_count = 0.0;
  double total = 0.0;
  for (const Bytecode* code : corpus) {
    disassembler_.for_each(*code, [&](const evm::InstructionView& view) {
      byte_counts[view.opcode] += 1.0;
      if (view.has_operand()) {
        operand_counts[view.operand()] += 1.0;
      } else {
        dash_count += 1.0;
      }
      total += 1.0;
    });
  }
  if (total <= 0.0) return;

  // Fold into the legacy string/gas-keyed tables (oracle + persistence
  // surface). Counts are exact sums of 1.0, so the fold is bit-identical
  // to accumulating there directly.
  for (std::size_t b = 0; b < 256; ++b) {
    if (byte_counts[b] <= 0.0) continue;
    mnemonic_table_[std::string(
        mnemonic_of_byte(static_cast<std::uint8_t>(b)))] = byte_counts[b];
    gas_table_[gas_of_byte(static_cast<std::uint8_t>(b))] += byte_counts[b];
  }
  for (const auto& [value, count] : operand_counts) {
    operand_table_[value.to_hex()] = count;
  }
  if (dash_count > 0.0) operand_table_["-"] = dash_count;

  // Normalize to the max frequency so the most common entries saturate the
  // channel (the paper's "higher intensity for more frequent" mapping).
  auto normalize = [](auto& table) {
    double max_count = 0.0;
    for (const auto& [key, count] : table) max_count = std::max(max_count, count);
    if (max_count <= 0.0) return;
    for (auto& [key, count] : table) count /= max_count;
  };
  normalize(mnemonic_table_);
  normalize(operand_table_);
  normalize(gas_table_);

  // Compile the channel LUTs from the normalized tables. The B channel is
  // keyed by the gas *value*, which several bytes can share, so it goes
  // through gas_table_ rather than byte_counts.
  for (std::size_t b = 0; b < 256; ++b) {
    const auto m_it = mnemonic_table_.find(
        std::string(mnemonic_of_byte(static_cast<std::uint8_t>(b))));
    if (m_it != mnemonic_table_.end()) mnemonic_lut_[b] = m_it->second;
    const auto g_it = gas_table_.find(gas_of_byte(static_cast<std::uint8_t>(b)));
    if (g_it != gas_table_.end()) gas_lut_[b] = g_it->second;
  }
  double operand_max = dash_count;
  for (const auto& [value, count] : operand_counts) {
    operand_max = std::max(operand_max, count);
  }
  operand_value_table_.reserve(operand_counts.size());
  for (const auto& [value, count] : operand_counts) {
    operand_value_table_.emplace(value, count / operand_max);
  }
  if (dash_count > 0.0) dash_freq_ = dash_count / operand_max;

  // Pass 2: intern the per-code pixel stream for the fitted corpus, so a
  // transform() over the same corpus (the VisionAdapter fit->encode
  // sequence) is a cache copy instead of a second walk.
  for (const Bytecode* code : corpus) {
    const auto [it, inserted] =
        fit_cache_.try_emplace(code->code_hash());
    if (!inserted) continue;  // bit-identical duplicate (proxy clone)
    std::vector<std::array<float, 3>>& pixels = it->second;
    pixels.reserve(code->size());
    disassembler_.for_each(*code, [&](const evm::InstructionView& view) {
      pixels.push_back({static_cast<float>(mnemonic_lut_[view.opcode]),
                        static_cast<float>(operand_channel(view)),
                        static_cast<float>(gas_lut_[view.opcode])});
    });
    pixels.shrink_to_fit();
  }
}

double FrequencyEncoder::mnemonic_freq(std::string_view mnemonic) const {
  const auto it = mnemonic_table_.find(std::string(mnemonic));
  return it == mnemonic_table_.end() ? 0.0 : it->second;
}

double FrequencyEncoder::operand_freq(const std::string& operand_key) const {
  const auto it = operand_table_.find(operand_key);
  return it == operand_table_.end() ? 0.0 : it->second;
}

double FrequencyEncoder::gas_freq(std::uint32_t gas) const {
  const auto it = gas_table_.find(gas);
  return it == gas_table_.end() ? 0.0 : it->second;
}

double FrequencyEncoder::operand_channel(
    const evm::InstructionView& view) const {
  if (!view.has_operand()) return dash_freq_;
  const auto it = operand_value_table_.find(view.operand());
  return it == operand_value_table_.end() ? 0.0 : it->second;
}

ml::nn::Tensor FrequencyEncoder::transform(const Bytecode& code,
                                           std::size_t side) const {
  ml::nn::Tensor image({3, side, side});
  const std::size_t pixels = side * side;
  const auto cached = fit_cache_.find(code.code_hash());
  if (cached != fit_cache_.end()) {
    const std::vector<std::array<float, 3>>& interned = cached->second;
    const std::size_t count = std::min(pixels, interned.size());
    for (std::size_t p = 0; p < count; ++p) {
      image.at3(0, p / side, p % side) = interned[p][0];
      image.at3(1, p / side, p % side) = interned[p][1];
      image.at3(2, p / side, p % side) = interned[p][2];
    }
    return image;
  }
  std::size_t p = 0;
  disassembler_.for_each(code, [&](const evm::InstructionView& view) {
    if (p >= pixels) return;
    image.at3(0, p / side, p % side) =
        static_cast<float>(mnemonic_lut_[view.opcode]);
    image.at3(1, p / side, p % side) =
        static_cast<float>(operand_channel(view));
    image.at3(2, p / side, p % side) =
        static_cast<float>(gas_lut_[view.opcode]);
    ++p;
  });
  return image;
}

ml::nn::Tensor FrequencyEncoder::transform_legacy(const Bytecode& code,
                                                  std::size_t side) const {
  ml::nn::Tensor image({3, side, side});
  const evm::Disassembly listing = disassembler_.disassemble(code);
  const std::size_t pixels = side * side;
  for (std::size_t p = 0; p < pixels && p < listing.instructions.size(); ++p) {
    const evm::Instruction& ins = listing.instructions[p];
    image.at3(0, p / side, p % side) =
        static_cast<float>(mnemonic_freq(ins.mnemonic));
    image.at3(1, p / side, p % side) =
        static_cast<float>(operand_freq(operand_key_of(ins)));
    image.at3(2, p / side, p % side) = static_cast<float>(gas_freq(ins.gas));
  }
  return image;
}

// --- NgramTokenizer ------------------------------------------------------------------

std::uint32_t NgramTokenizer::gram_at(const Bytecode& code,
                                      std::size_t offset) {
  std::uint32_t gram = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    gram = (gram << 8) |
           (offset + b < code.size() ? code.bytes()[offset + b] : 0u);
  }
  return gram;
}

void NgramTokenizer::fit(const std::vector<const Bytecode*>& corpus) {
  obs::ScopedSpan span("features.ngram_fit");
  // Open-addressing accumulator instead of a red-black tree: the per-gram
  // node churn dominated fit. Reserved to the gram-count upper bound so the
  // table never rehashes mid-corpus.
  std::size_t gram_upper_bound = 0;
  for (const Bytecode* code : corpus) {
    gram_upper_bound += (code->size() + 2) / 3;
  }
  std::unordered_map<std::uint32_t, std::size_t> counts;
  counts.reserve(std::max<std::size_t>(gram_upper_bound, 64));
  for (const Bytecode* code : corpus) {
    for (std::size_t offset = 0; offset < code->size(); offset += 3) {
      ++counts[gram_at(*code, offset)];
    }
  }
  // Keep the vocab_size - 1 most frequent grams (0 is reserved for UNK).
  // Explicit (count desc, gram desc) order — exactly what the old
  // reverse-sorted std::map ranking produced — so the kept vocabulary and
  // its ids are unchanged.
  std::vector<std::pair<std::size_t, std::uint32_t>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [gram, count] : counts) ranked.emplace_back(count, gram);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second > b.second;
            });

  gram_ids_.clear();
  const std::size_t keep = std::min(ranked.size(), vocab_size_ - 1);
  gram_ids_.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    gram_ids_.emplace(ranked[i].second, i + 1);
  }
}

TokenSequence NgramTokenizer::transform(const Bytecode& code) const {
  TokenSequence out;
  out.reserve(code.size() / 3 + 1);
  for (std::size_t offset = 0; offset < code.size(); offset += 3) {
    const auto it = gram_ids_.find(gram_at(code, offset));
    out.push_back(it == gram_ids_.end() ? 0 : it->second);
  }
  if (out.empty()) out.push_back(0);
  return out;
}

TokenSequence byte_tokens(const Bytecode& code) {
  TokenSequence out;
  out.reserve(code.size());
  for (std::uint8_t byte : code.bytes()) out.push_back(byte);
  if (out.empty()) out.push_back(256);
  return out;
}

}  // namespace phishinghook::core
