#include "core/features.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace phishinghook::core {

// --- HistogramVocabulary -----------------------------------------------------

void HistogramVocabulary::fit(const std::vector<const Bytecode*>& corpus) {
  obs::ScopedSpan span("features.vocab_fit");
  mnemonics_.clear();
  index_.clear();
  const evm::Disassembler disassembler;
  for (const Bytecode* code : corpus) {
    const evm::Disassembly listing = disassembler.disassemble(*code);
    for (const evm::Instruction& ins : listing.instructions) {
      const std::string name(ins.mnemonic);
      if (!index_.contains(name)) {
        index_.emplace(name, mnemonics_.size());
        mnemonics_.push_back(name);
      }
    }
  }
}

HistogramVocabulary HistogramVocabulary::from_mnemonics(
    std::vector<std::string> mnemonics) {
  HistogramVocabulary vocabulary;
  vocabulary.mnemonics_ = std::move(mnemonics);
  for (std::size_t i = 0; i < vocabulary.mnemonics_.size(); ++i) {
    vocabulary.index_.emplace(vocabulary.mnemonics_[i], i);
  }
  return vocabulary;
}

std::vector<double> HistogramVocabulary::transform(const Bytecode& code) const {
  std::vector<double> counts(mnemonics_.size(), 0.0);
  const evm::Disassembler disassembler;
  const evm::Disassembly listing = disassembler.disassemble(code);
  for (const evm::Instruction& ins : listing.instructions) {
    const auto it = index_.find(std::string(ins.mnemonic));
    if (it != index_.end()) counts[it->second] += 1.0;
  }
  return counts;
}

ml::Matrix HistogramVocabulary::transform_all(
    const std::vector<const Bytecode*>& corpus) const {
  obs::ScopedSpan span("features.transform_all");
  ml::Matrix out(corpus.size(), mnemonics_.size());
  for (std::size_t r = 0; r < corpus.size(); ++r) {
    const std::vector<double> counts = transform(*corpus[r]);
    for (std::size_t c = 0; c < counts.size(); ++c) out.at(r, c) = counts[c];
  }
  return out;
}

// --- R2D2 images ----------------------------------------------------------------

ml::nn::Tensor r2d2_image(const Bytecode& code, std::size_t side) {
  ml::nn::Tensor image({3, side, side});
  const auto& bytes = code.bytes();
  const std::size_t pixels = side * side;
  for (std::size_t p = 0; p < pixels; ++p) {
    for (std::size_t channel = 0; channel < 3; ++channel) {
      const std::size_t byte_index = p * 3 + channel;
      if (byte_index >= bytes.size()) return image;  // zero padding
      image.at3(channel, p / side, p % side) =
          static_cast<float>(bytes[byte_index]) / 255.0F;
    }
  }
  return image;
}

// --- FrequencyEncoder -------------------------------------------------------------

namespace {
std::string operand_key_of(const evm::Instruction& ins) {
  return ins.operand.has_value() ? ins.operand->to_hex() : "-";
}
}  // namespace

void FrequencyEncoder::fit(const std::vector<const Bytecode*>& corpus) {
  obs::ScopedSpan span("features.freq_fit");
  mnemonic_table_.clear();
  operand_table_.clear();
  gas_table_.clear();
  double total = 0.0;
  for (const Bytecode* code : corpus) {
    const evm::Disassembly listing = disassembler_.disassemble(*code);
    for (const evm::Instruction& ins : listing.instructions) {
      mnemonic_table_[std::string(ins.mnemonic)] += 1.0;
      operand_table_[operand_key_of(ins)] += 1.0;
      gas_table_[ins.gas] += 1.0;
      total += 1.0;
    }
  }
  if (total <= 0.0) return;
  // Normalize to the max frequency so the most common entries saturate the
  // channel (the paper's "higher intensity for more frequent" mapping).
  auto normalize = [](auto& table) {
    double max_count = 0.0;
    for (const auto& [key, count] : table) max_count = std::max(max_count, count);
    if (max_count <= 0.0) return;
    for (auto& [key, count] : table) count /= max_count;
  };
  normalize(mnemonic_table_);
  normalize(operand_table_);
  normalize(gas_table_);
}

double FrequencyEncoder::mnemonic_freq(std::string_view mnemonic) const {
  const auto it = mnemonic_table_.find(std::string(mnemonic));
  return it == mnemonic_table_.end() ? 0.0 : it->second;
}

double FrequencyEncoder::operand_freq(const std::string& operand_key) const {
  const auto it = operand_table_.find(operand_key);
  return it == operand_table_.end() ? 0.0 : it->second;
}

double FrequencyEncoder::gas_freq(std::uint32_t gas) const {
  const auto it = gas_table_.find(gas);
  return it == gas_table_.end() ? 0.0 : it->second;
}

ml::nn::Tensor FrequencyEncoder::transform(const Bytecode& code,
                                           std::size_t side) const {
  ml::nn::Tensor image({3, side, side});
  const evm::Disassembly listing = disassembler_.disassemble(code);
  const std::size_t pixels = side * side;
  for (std::size_t p = 0; p < pixels && p < listing.instructions.size(); ++p) {
    const evm::Instruction& ins = listing.instructions[p];
    image.at3(0, p / side, p % side) =
        static_cast<float>(mnemonic_freq(ins.mnemonic));
    image.at3(1, p / side, p % side) =
        static_cast<float>(operand_freq(operand_key_of(ins)));
    image.at3(2, p / side, p % side) = static_cast<float>(gas_freq(ins.gas));
  }
  return image;
}

// --- NgramTokenizer ------------------------------------------------------------------

std::uint32_t NgramTokenizer::gram_at(const Bytecode& code,
                                      std::size_t offset) {
  std::uint32_t gram = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    gram = (gram << 8) |
           (offset + b < code.size() ? code.bytes()[offset + b] : 0u);
  }
  return gram;
}

void NgramTokenizer::fit(const std::vector<const Bytecode*>& corpus) {
  obs::ScopedSpan span("features.ngram_fit");
  std::map<std::uint32_t, std::size_t> counts;
  for (const Bytecode* code : corpus) {
    for (std::size_t offset = 0; offset < code->size(); offset += 3) {
      ++counts[gram_at(*code, offset)];
    }
  }
  // Keep the vocab_size - 1 most frequent grams (0 is reserved for UNK).
  std::vector<std::pair<std::size_t, std::uint32_t>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [gram, count] : counts) ranked.emplace_back(count, gram);
  std::sort(ranked.rbegin(), ranked.rend());

  gram_ids_.clear();
  const std::size_t keep = std::min(ranked.size(), vocab_size_ - 1);
  for (std::size_t i = 0; i < keep; ++i) {
    gram_ids_.emplace(ranked[i].second, i + 1);
  }
}

TokenSequence NgramTokenizer::transform(const Bytecode& code) const {
  TokenSequence out;
  out.reserve(code.size() / 3 + 1);
  for (std::size_t offset = 0; offset < code.size(); offset += 3) {
    const auto it = gram_ids_.find(gram_at(code, offset));
    out.push_back(it == gram_ids_.end() ? 0 : it->second);
  }
  if (out.empty()) out.push_back(0);
  return out;
}

TokenSequence byte_tokens(const Bytecode& code) {
  TokenSequence out;
  out.reserve(code.size());
  for (std::uint8_t byte : code.bytes()) out.push_back(byte);
  if (out.empty()) out.push_back(256);
  return out;
}

}  // namespace phishinghook::core
