// Bytecode Extraction Module (BEM) — Fig. 1-3.
//
// Pulls deployed bytecode for labeled contract addresses through the
// explorer's eth_getCode endpoint, exactly as the paper's pipeline does
// against a public JSON-RPC node.
#pragma once

#include <vector>

#include "chain/explorer.hpp"

namespace phishinghook::core {

struct ExtractedContract {
  evm::Address address;
  evm::Bytecode code;
  bool flagged_phishing = false;
};

class BytecodeExtractionModule {
 public:
  explicit BytecodeExtractionModule(const chain::Explorer& explorer)
      : explorer_(&explorer) {}

  /// eth_getCode for one address (hex round-trip, as over JSON-RPC).
  ExtractedContract extract(const evm::Address& address) const;

  /// Batch extraction; empty codes (EOAs, destroyed contracts) are skipped
  /// when `skip_empty` is set.
  std::vector<ExtractedContract> extract_all(
      const std::vector<evm::Address>& addresses, bool skip_empty = true) const;

 private:
  const chain::Explorer* explorer_;
};

}  // namespace phishinghook::core
