// Report rendering: aligned text tables matching the paper's rows, plus
// CSV dumps written next to each bench binary.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace phishinghook::core {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a header separator; columns padded to content width.
  std::string render() const;

  /// Writes the same content as CSV.
  void write_csv(const std::filesystem::path& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "93.63" — the paper prints metrics as percentages with 2 decimals.
std::string percent(double fraction);

}  // namespace phishinghook::core
