#include "core/model_registry.hpp"

#include "common/errors.hpp"
#include "ml/catboost.hpp"
#include "ml/flat_tree.hpp"
#include "obs/trace.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/knn.hpp"
#include "ml/lightgbm.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/models/eca_efficientnet.hpp"
#include "ml/models/escort.hpp"
#include "ml/models/scsguard.hpp"
#include "ml/models/transformer_classifier.hpp"
#include "ml/models/vit.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace phishinghook::core {

std::string_view category_label(ModelCategory category) {
  switch (category) {
    case ModelCategory::kHistogram: return "Histogram";
    case ModelCategory::kVision: return "Vision";
    case ModelCategory::kLanguage: return "Language";
    case ModelCategory::kVulnerability: return "Vulnerability";
  }
  return "?";
}

// --- PhishingClassifier (ml::Scorer default) --------------------------------

void PhishingClassifier::score_batch(const ml::BytecodeBatchView& view,
                                     std::span<ml::ScoredRow> out) {
  if (out.size() != view.size()) {
    throw InvalidArgument("score_batch: out span size " +
                          std::to_string(out.size()) + " != view size " +
                          std::to_string(view.size()));
  }
  if (view.empty()) return;
  const std::vector<double> probabilities = predict_proba(view.to_vector());
  if (probabilities.size() != view.size()) {
    throw StateError(name() + " predict_proba returned " +
                     std::to_string(probabilities.size()) + " rows for " +
                     std::to_string(view.size()) + " codes");
  }
  for (std::size_t i = 0; i < view.size(); ++i) {
    out[i] = ml::ScoredRow{probabilities[i], /*stage=*/0, /*degraded=*/false};
  }
}

// --- HistogramAdapter -------------------------------------------------------

HistogramAdapter::HistogramAdapter(std::unique_ptr<ml::TabularClassifier> model,
                                   std::string name)
    : model_(std::move(model)), name_(std::move(name)) {}

HistogramAdapter::HistogramAdapter(std::unique_ptr<ml::TabularClassifier> model,
                                   std::string name,
                                   HistogramVocabulary vocabulary)
    : model_(std::move(model)),
      name_(std::move(name)),
      vocabulary_(std::move(vocabulary)) {}

void HistogramAdapter::fit(const std::vector<const Bytecode*>& codes,
                           const std::vector<int>& labels) {
  obs::ScopedSpan span("model.fit", name_.c_str());
  vocabulary_.fit(codes);
  model_->fit(vocabulary_.transform_all(codes), labels);
}

std::vector<double> HistogramAdapter::predict_proba(
    const std::vector<const Bytecode*>& codes) {
  obs::ScopedSpan span("model.predict", name_.c_str());
  const ml::Matrix features = vocabulary_.transform_all(codes);
  // Tree models expose their compiled ensemble: route the batch through
  // it directly (branch-free blocked traversal, bit-identical to the
  // model's own predict_proba). Non-tree models keep the virtual path.
  if (const ml::FlatTreeEnsemble* flat = model_->flat_ensemble()) {
    std::vector<double> out(features.rows(), 0.0);
    flat->predict_into(features, out);
    return out;
  }
  return model_->predict_proba(features);
}

// --- VisionAdapter -----------------------------------------------------------

VisionAdapter::VisionAdapter(
    std::unique_ptr<ml::models::ImageClassifierModel> model, std::string name,
    ImageEncoding encoding, std::size_t side)
    : model_(std::move(model)),
      name_(std::move(name)),
      encoding_(encoding),
      side_(side) {}

std::vector<ml::nn::Tensor> VisionAdapter::encode(
    const std::vector<const Bytecode*>& codes) const {
  std::vector<ml::nn::Tensor> out;
  out.reserve(codes.size());
  for (const Bytecode* code : codes) {
    out.push_back(encoding_ == ImageEncoding::kR2D2
                      ? r2d2_image(*code, side_)
                      : frequency_encoder_.transform(*code, side_));
  }
  return out;
}

void VisionAdapter::fit(const std::vector<const Bytecode*>& codes,
                        const std::vector<int>& labels) {
  obs::ScopedSpan span("model.fit", name_.c_str());
  if (encoding_ == ImageEncoding::kFrequency) frequency_encoder_.fit(codes);
  model_->fit(encode(codes), labels);
}

std::vector<double> VisionAdapter::predict_proba(
    const std::vector<const Bytecode*>& codes) {
  obs::ScopedSpan span("model.predict", name_.c_str());
  return model_->predict_proba(encode(codes));
}

// --- SequenceAdapter -----------------------------------------------------------

SequenceAdapter::SequenceAdapter(
    std::unique_ptr<ml::models::SequenceClassifierModel> model,
    std::string name, Tokenization tokenization, ModelCategory category,
    std::size_t ngram_vocab)
    : model_(std::move(model)),
      name_(std::move(name)),
      tokenization_(tokenization),
      category_(category),
      ngram_tokenizer_(ngram_vocab) {}

std::vector<TokenSequence> SequenceAdapter::tokenize(
    const std::vector<const Bytecode*>& codes) const {
  std::vector<TokenSequence> out;
  out.reserve(codes.size());
  for (const Bytecode* code : codes) {
    out.push_back(tokenization_ == Tokenization::kNgram
                      ? ngram_tokenizer_.transform(*code)
                      : byte_tokens(*code));
  }
  return out;
}

void SequenceAdapter::fit(const std::vector<const Bytecode*>& codes,
                          const std::vector<int>& labels) {
  obs::ScopedSpan span("model.fit", name_.c_str());
  if (tokenization_ == Tokenization::kNgram) ngram_tokenizer_.fit(codes);
  model_->fit(tokenize(codes), labels);
}

std::vector<double> SequenceAdapter::predict_proba(
    const std::vector<const Bytecode*>& codes) {
  obs::ScopedSpan span("model.predict", name_.c_str());
  return model_->predict_proba(tokenize(codes));
}

// --- registry ---------------------------------------------------------------------

namespace {

ml::models::SequenceModelConfig language_base(const common::ScaleParams& params,
                                              std::uint64_t seed) {
  ml::models::SequenceModelConfig base;
  base.vocab = kByteVocab;
  base.dim = 32;
  base.heads = 4;
  base.layers = 2;
  base.max_len = params.max_sequence;
  base.epochs = params.nn_epochs;
  base.seed = seed;
  return base;
}

}  // namespace

std::vector<ModelSpec> all_models(const common::ScaleParams& params) {
  std::vector<ModelSpec> specs;

  // --- HSCs (Table II order) ------------------------------------------------
  specs.push_back({"Random Forest", ModelCategory::kHistogram,
                   [](std::uint64_t seed) {
                     ml::RandomForestConfig config;
                     config.seed = seed;
                     return std::make_unique<HistogramAdapter>(
                         std::make_unique<ml::RandomForestClassifier>(config),
                         "Random Forest");
                   }});
  specs.push_back({"k-NN", ModelCategory::kHistogram, [](std::uint64_t) {
                     return std::make_unique<HistogramAdapter>(
                         std::make_unique<ml::KnnClassifier>(), "k-NN");
                   }});
  specs.push_back({"SVM", ModelCategory::kHistogram, [](std::uint64_t seed) {
                     ml::SvmConfig config;
                     config.seed = seed;
                     return std::make_unique<HistogramAdapter>(
                         std::make_unique<ml::SvmClassifier>(config), "SVM");
                   }});
  specs.push_back(
      {"Logistic Regression", ModelCategory::kHistogram, [](std::uint64_t seed) {
         ml::LogisticRegressionConfig config;
         config.seed = seed;
         return std::make_unique<HistogramAdapter>(
             std::make_unique<ml::LogisticRegressionClassifier>(config),
             "Logistic Regression");
       }});
  specs.push_back({"XGBoost", ModelCategory::kHistogram, [](std::uint64_t seed) {
                     ml::GradientBoostingConfig config;
                     config.seed = seed;
                     return std::make_unique<HistogramAdapter>(
                         std::make_unique<ml::GradientBoostingClassifier>(config),
                         "XGBoost");
                   }});
  specs.push_back({"LightGBM", ModelCategory::kHistogram, [](std::uint64_t seed) {
                     ml::LightGbmConfig config;
                     config.seed = seed;
                     return std::make_unique<HistogramAdapter>(
                         std::make_unique<ml::LightGbmClassifier>(config),
                         "LightGBM");
                   }});
  specs.push_back({"CatBoost", ModelCategory::kHistogram, [](std::uint64_t seed) {
                     ml::CatBoostConfig config;
                     config.seed = seed;
                     return std::make_unique<HistogramAdapter>(
                         std::make_unique<ml::CatBoostClassifier>(config),
                         "CatBoost");
                   }});

  // --- Vision models -----------------------------------------------------------
  // Vision forward passes are an order of magnitude cheaper than the
  // language models' at these sides, so they train 4x the epochs within the
  // same budget (the paper trained all deep models to convergence on GPUs).
  const int vision_epochs = 4 * params.nn_epochs;
  specs.push_back(
      {"ECA+EfficientNet", ModelCategory::kVision,
       [params, vision_epochs](std::uint64_t seed) {
         ml::models::EcaEfficientNetConfig config;
         config.base.image_side = params.image_side;
         config.base.epochs = vision_epochs;
         config.base.seed = seed;
         return std::make_unique<VisionAdapter>(
             std::make_unique<ml::models::EcaEfficientNetModel>(config),
             "ECA+EfficientNet", ImageEncoding::kR2D2, params.image_side);
       }});
  specs.push_back({"ViT+R2D2", ModelCategory::kVision,
                   [params, vision_epochs](std::uint64_t seed) {
                     ml::models::VitConfig config;
                     config.base.image_side = params.image_side;
                     config.base.epochs = vision_epochs;
                     config.base.seed = seed;
                     return std::make_unique<VisionAdapter>(
                         std::make_unique<ml::models::VitModel>(config),
                         "ViT+R2D2", ImageEncoding::kR2D2, params.image_side);
                   }});
  specs.push_back({"ViT+Freq", ModelCategory::kVision,
                   [params, vision_epochs](std::uint64_t seed) {
                     ml::models::VitConfig config;
                     config.base.image_side = params.image_side;
                     config.base.epochs = vision_epochs;
                     config.base.seed = seed;
                     return std::make_unique<VisionAdapter>(
                         std::make_unique<ml::models::VitModel>(config),
                         "ViT+Freq", ImageEncoding::kFrequency,
                         params.image_side);
                   }});

  // --- Language models ------------------------------------------------------------
  specs.push_back(
      {"SCSGuard", ModelCategory::kLanguage, [params](std::uint64_t seed) {
         ml::models::SequenceModelConfig config = language_base(params, seed);
         config.vocab = 4096;
         return std::make_unique<SequenceAdapter>(
             std::make_unique<ml::models::ScsGuardModel>(config), "SCSGuard",
             Tokenization::kNgram, ModelCategory::kLanguage, config.vocab);
       }});
  specs.push_back(
      {"GPT-2 (alpha)", ModelCategory::kLanguage, [params](std::uint64_t seed) {
         const auto config =
             ml::models::gpt2_config(language_base(params, seed), false);
         return std::make_unique<SequenceAdapter>(
             std::make_unique<ml::models::TransformerClassifier>(config,
                                                                 "GPT-2 (alpha)"),
             "GPT-2 (alpha)", Tokenization::kBytes, ModelCategory::kLanguage);
       }});
  specs.push_back(
      {"T5 (alpha)", ModelCategory::kLanguage, [params](std::uint64_t seed) {
         const auto config =
             ml::models::t5_config(language_base(params, seed), false);
         return std::make_unique<SequenceAdapter>(
             std::make_unique<ml::models::TransformerClassifier>(config,
                                                                 "T5 (alpha)"),
             "T5 (alpha)", Tokenization::kBytes, ModelCategory::kLanguage);
       }});
  specs.push_back(
      {"GPT-2 (beta)", ModelCategory::kLanguage, [params](std::uint64_t seed) {
         const auto config =
             ml::models::gpt2_config(language_base(params, seed), true);
         return std::make_unique<SequenceAdapter>(
             std::make_unique<ml::models::TransformerClassifier>(config,
                                                                 "GPT-2 (beta)"),
             "GPT-2 (beta)", Tokenization::kBytes, ModelCategory::kLanguage);
       }});
  specs.push_back(
      {"T5 (beta)", ModelCategory::kLanguage, [params](std::uint64_t seed) {
         const auto config =
             ml::models::t5_config(language_base(params, seed), true);
         return std::make_unique<SequenceAdapter>(
             std::make_unique<ml::models::TransformerClassifier>(config,
                                                                 "T5 (beta)"),
             "T5 (beta)", Tokenization::kBytes, ModelCategory::kLanguage);
       }});

  // --- Vulnerability detection model -------------------------------------------------
  specs.push_back(
      {"ESCORT", ModelCategory::kVulnerability, [params](std::uint64_t seed) {
         ml::models::EscortConfig config;
         config.max_len = params.max_sequence;
         config.pretrain_epochs = std::max(2, params.nn_epochs / 2);
         config.transfer_epochs = params.nn_epochs;
         config.seed = seed;
         return std::make_unique<SequenceAdapter>(
             std::make_unique<ml::models::EscortModel>(config), "ESCORT",
             Tokenization::kBytes, ModelCategory::kVulnerability);
       }});

  return specs;
}

const ModelSpec& find_model(const std::vector<ModelSpec>& specs,
                            std::string_view name) {
  for (const ModelSpec& spec : specs) {
    if (spec.name == name) return spec;
  }
  throw NotFound("model '" + std::string(name) + "'");
}

}  // namespace phishinghook::core
