#include "core/pam.hpp"

#include "stats/holm.hpp"

namespace phishinghook::core {

PostHocReport post_hoc_analysis(const std::vector<ModelEvaluation>& models) {
  PostHocReport report;

  // 1. Shapiro-Wilk per (model, metric).
  for (const ModelEvaluation& model : models) {
    for (std::string_view metric : kMetricNames) {
      NormalityEntry entry;
      entry.model = model.model;
      entry.metric = std::string(metric);
      const std::vector<double> series = model.metric_series(metric);
      bool constant = true;
      for (double v : series) {
        if (v != series.front()) {
          constant = false;
          break;
        }
      }
      if (constant || series.size() < 3) {
        entry.w = 1.0;
        entry.p_value = 1.0;
      } else {
        const auto sw = stats::shapiro_wilk(series);
        entry.w = sw.w;
        entry.p_value = sw.p_value;
      }
      entry.normal = entry.p_value >= 0.05;
      if (!entry.normal) ++report.non_normal_pairs;
      report.normality.push_back(std::move(entry));
    }
  }

  // 2. Kruskal-Wallis per metric, Holm-adjusted across metrics.
  std::vector<double> raw_p;
  for (std::string_view metric : kMetricNames) {
    std::vector<std::vector<double>> groups;
    for (const ModelEvaluation& model : models) {
      groups.push_back(model.metric_series(metric));
    }
    const auto kw = stats::kruskal_wallis(groups);
    MetricKruskalWallis row;
    row.metric = std::string(metric);
    row.h = kw.h;
    row.p = kw.p_value;
    report.kruskal_wallis.push_back(std::move(row));
    raw_p.push_back(kw.p_value);
  }
  const std::vector<double> adjusted = stats::holm_bonferroni(raw_p);
  for (std::size_t i = 0; i < report.kruskal_wallis.size(); ++i) {
    report.kruskal_wallis[i].p_adjusted = adjusted[i];
  }

  // 3. Dunn's test per metric with category breakdown.
  for (std::string_view metric : kMetricNames) {
    std::vector<std::vector<double>> groups;
    for (const ModelEvaluation& model : models) {
      groups.push_back(model.metric_series(metric));
    }
    MetricDunn dunn;
    dunn.metric = std::string(metric);
    dunn.result = stats::dunn_test(groups);
    dunn.significant_fraction = dunn.result.significant_fraction();

    std::size_t within = 0, within_sig = 0, cross = 0, cross_sig = 0;
    for (const stats::DunnPair& pair : dunn.result.pairs) {
      const bool same_category =
          models[pair.group_a].category == models[pair.group_b].category;
      const bool significant = pair.p_adjusted < 0.05;
      if (same_category) {
        ++within;
        if (significant) ++within_sig;
      } else {
        ++cross;
        if (significant) ++cross_sig;
      }
    }
    dunn.within_category_fraction =
        within > 0 ? static_cast<double>(within_sig) / static_cast<double>(within)
                   : 0.0;
    dunn.cross_category_fraction =
        cross > 0 ? static_cast<double>(cross_sig) / static_cast<double>(cross)
                  : 0.0;
    report.dunn.push_back(std::move(dunn));
  }
  return report;
}

}  // namespace phishinghook::core
