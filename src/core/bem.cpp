#include "core/bem.hpp"

namespace phishinghook::core {

ExtractedContract BytecodeExtractionModule::extract(
    const evm::Address& address) const {
  ExtractedContract out;
  out.address = address;
  // Round-trip through the JSON-RPC hex representation deliberately: the
  // BEM consumes the endpoint's wire format, not internal state.
  out.code = evm::Bytecode::from_hex(explorer_->eth_get_code(address));
  out.flagged_phishing = explorer_->is_flagged_phishing(address);
  return out;
}

std::vector<ExtractedContract> BytecodeExtractionModule::extract_all(
    const std::vector<evm::Address>& addresses, bool skip_empty) const {
  std::vector<ExtractedContract> out;
  out.reserve(addresses.size());
  for (const evm::Address& address : addresses) {
    ExtractedContract extracted = extract(address);
    if (skip_empty && extracted.code.empty()) continue;
    out.push_back(std::move(extracted));
  }
  return out;
}

}  // namespace phishinghook::core
