// Model registry: the 16 evaluated detectors behind one interface.
//
// A `PhishingClassifier` consumes raw deployed bytecodes; each adapter owns
// its feature pipeline (histogram vocabulary, image encoder, tokenizer) and
// fits it on the training split only, exactly as the MEM requires.
//
// Categories follow Table II's markers: Histogram (†), Vision (‡),
// Language (*), Vulnerability (§).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/features.hpp"
#include "ml/classifier.hpp"
#include "ml/models/sequence_model.hpp"
#include "ml/models/vision_model.hpp"
#include "ml/scorer.hpp"

namespace phishinghook::core {

enum class ModelCategory { kHistogram, kVision, kLanguage, kVulnerability };

std::string_view category_label(ModelCategory category);

/// A fit-capable detector over raw bytecodes. Every adapter is also an
/// ml::Scorer, so a fitted classifier plugs straight into the serving
/// path (ScoringEngine, CascadeScorer) with no further wrapping: the
/// default score_batch routes through predict_proba and attributes every
/// row to stage 0.
class PhishingClassifier : public ml::Scorer {
 public:
  virtual void fit(const std::vector<const Bytecode*>& codes,
                   const std::vector<int>& labels) = 0;
  virtual std::vector<double> predict_proba(
      const std::vector<const Bytecode*>& codes) = 0;
  std::vector<int> predict(const std::vector<const Bytecode*>& codes) {
    return ml::threshold_predictions(predict_proba(codes));
  }

  virtual ModelCategory category() const = 0;

  /// ml::Scorer: single-stage scoring via predict_proba. Throws
  /// InvalidArgument when out.size() != view.size().
  void score_batch(const ml::BytecodeBatchView& view,
                   std::span<ml::ScoredRow> out) override;
};

/// Histogram (HSC) adapter: vocabulary + a tabular classifier.
class HistogramAdapter final : public PhishingClassifier {
 public:
  HistogramAdapter(std::unique_ptr<ml::TabularClassifier> model,
                   std::string name);

  /// Restore path (artifact load): an already-fitted model plus its
  /// vocabulary, skipping fit() entirely.
  HistogramAdapter(std::unique_ptr<ml::TabularClassifier> model,
                   std::string name, HistogramVocabulary vocabulary);

  void fit(const std::vector<const Bytecode*>& codes,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<const Bytecode*>& codes) override;
  std::string name() const override { return name_; }
  ModelCategory category() const override { return ModelCategory::kHistogram; }

  /// The inner model's compiled ensemble (tree models after fit/load).
  const ml::FlatTreeEnsemble* flat_ensemble() const override {
    return model_->flat_ensemble();
  }

  /// The fitted vocabulary and inner model (SHAP analysis needs both).
  const HistogramVocabulary& vocabulary() const { return vocabulary_; }
  const ml::TabularClassifier& model() const { return *model_; }

 private:
  std::unique_ptr<ml::TabularClassifier> model_;
  std::string name_;
  HistogramVocabulary vocabulary_;
};

/// Which image encoding a vision adapter uses.
enum class ImageEncoding { kR2D2, kFrequency };

class VisionAdapter final : public PhishingClassifier {
 public:
  VisionAdapter(std::unique_ptr<ml::models::ImageClassifierModel> model,
                std::string name, ImageEncoding encoding, std::size_t side);

  void fit(const std::vector<const Bytecode*>& codes,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<const Bytecode*>& codes) override;
  std::string name() const override { return name_; }
  ModelCategory category() const override { return ModelCategory::kVision; }

 private:
  std::vector<ml::nn::Tensor> encode(
      const std::vector<const Bytecode*>& codes) const;

  std::unique_ptr<ml::models::ImageClassifierModel> model_;
  std::string name_;
  ImageEncoding encoding_;
  std::size_t side_;
  FrequencyEncoder frequency_encoder_;  // used when encoding == kFrequency
};

/// Which tokenization a sequence adapter uses.
enum class Tokenization { kNgram, kBytes };

class SequenceAdapter final : public PhishingClassifier {
 public:
  SequenceAdapter(std::unique_ptr<ml::models::SequenceClassifierModel> model,
                  std::string name, Tokenization tokenization,
                  ModelCategory category, std::size_t ngram_vocab = 4096);

  void fit(const std::vector<const Bytecode*>& codes,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<const Bytecode*>& codes) override;
  std::string name() const override { return name_; }
  ModelCategory category() const override { return category_; }

 private:
  std::vector<TokenSequence> tokenize(
      const std::vector<const Bytecode*>& codes) const;

  std::unique_ptr<ml::models::SequenceClassifierModel> model_;
  std::string name_;
  Tokenization tokenization_;
  ModelCategory category_;
  NgramTokenizer ngram_tokenizer_;
};

/// A registry entry: name, category, and a factory producing a fresh
/// (unfitted) classifier, seeded per fold.
struct ModelSpec {
  std::string name;
  ModelCategory category;
  std::function<std::unique_ptr<PhishingClassifier>(std::uint64_t seed)> make;
};

/// All 16 Table II models, scaled by `params` (image side, sequence caps,
/// epochs). Order matches Table II.
std::vector<ModelSpec> all_models(const common::ScaleParams& params);

/// Lookup by Table II name ("Random Forest", "GPT-2 (alpha)", ...).
const ModelSpec& find_model(const std::vector<ModelSpec>& specs,
                            std::string_view name);

}  // namespace phishinghook::core
