#include "core/report.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "common/errors.hpp"
#include "common/strings.hpp"

namespace phishinghook::core {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw InvalidArgument("table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += common::pad_right(row[c], widths[c]);
      out += c + 1 < row.size() ? "  " : "";
    }
    out += '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TextTable::write_csv(const std::filesystem::path& path) const {
  common::CsvWriter writer(path);
  writer.write_row(header_);
  for (const auto& row : rows_) writer.write_row(row);
}

std::string percent(double fraction) {
  return common::format_fixed(100.0 * fraction, 2);
}

}  // namespace phishinghook::core
