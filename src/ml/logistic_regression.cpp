#include "ml/logistic_regression.hpp"

#include <cmath>

namespace phishinghook::ml {

namespace {
double sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

LogisticRegressionClassifier::LogisticRegressionClassifier(
    LogisticRegressionConfig config)
    : config_(config) {}

void LogisticRegressionClassifier::fit(const Matrix& x,
                                       const std::vector<int>& y) {
  if (x.rows() != y.size()) {
    throw InvalidArgument("LogisticRegression::fit size mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Standardization statistics from the training set only.
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x.at(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double delta = x.at(r, c) - mean_[c];
      stddev_[c] += delta * delta;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant feature
  }

  weights_.assign(d, 0.0);
  bias_ = 0.0;

  // Adam state.
  std::vector<double> m_w(d, 0.0), v_w(d, 0.0);
  double m_b = 0.0, v_b = 0.0;
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;

  std::vector<double> z(d);
  std::vector<double> grad(d);
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double dot = bias_;
      const auto row = x.row(r);
      for (std::size_t c = 0; c < d; ++c) {
        z[c] = (row[c] - mean_[c]) / stddev_[c];
        dot += weights_[c] * z[c];
      }
      const double err = sigmoid(dot) - static_cast<double>(y[r]);
      for (std::size_t c = 0; c < d; ++c) grad[c] += err * z[c];
      grad_b += err;
    }
    for (std::size_t c = 0; c < d; ++c) {
      grad[c] = grad[c] / static_cast<double>(n) + config_.l2 * weights_[c];
    }
    grad_b /= static_cast<double>(n);

    const double bc1 = 1.0 - std::pow(beta1, epoch);
    const double bc2 = 1.0 - std::pow(beta2, epoch);
    for (std::size_t c = 0; c < d; ++c) {
      m_w[c] = beta1 * m_w[c] + (1 - beta1) * grad[c];
      v_w[c] = beta2 * v_w[c] + (1 - beta2) * grad[c] * grad[c];
      weights_[c] -= config_.learning_rate * (m_w[c] / bc1) /
                     (std::sqrt(v_w[c] / bc2) + eps);
    }
    m_b = beta1 * m_b + (1 - beta1) * grad_b;
    v_b = beta2 * v_b + (1 - beta2) * grad_b * grad_b;
    bias_ -= config_.learning_rate * (m_b / bc1) / (std::sqrt(v_b / bc2) + eps);
  }
}

double LogisticRegressionClassifier::margin(std::span<const double> row) const {
  double dot = bias_;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    dot += weights_[c] * (row[c] - mean_[c]) / stddev_[c];
  }
  return dot;
}

std::vector<double> LogisticRegressionClassifier::predict_proba(
    const Matrix& x) const {
  if (weights_.empty()) throw StateError("LogisticRegression::predict before fit");
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = sigmoid(margin(x.row(r)));
  }
  return out;
}

}  // namespace phishinghook::ml
