// SCSGuard (Hu, Bai, Xu — INFOCOM Workshops 2022), reimplemented from the
// paper's description: bytecode hex strings are read as n-grams, embedded,
// passed through multi-head attention to capture long-range dependencies,
// then a GRU models the sequential structure, and a fully connected layer
// produces the logits.
#pragma once

#include <memory>

#include "ml/nn/attention.hpp"
#include "ml/nn/gru.hpp"
#include "ml/models/sequence_model.hpp"

namespace phishinghook::ml::models {

class ScsGuardModel final : public SequenceClassifierModel {
 public:
  explicit ScsGuardModel(SequenceModelConfig config = {});

  void fit(const std::vector<TokenSequence>& sequences,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<TokenSequence>& sequences) override;
  std::string name() const override { return "SCSGuard"; }

 private:
  nn::Tensor forward(const TokenSequence& window);
  void backward(const nn::Tensor& grad_logits);

  SequenceModelConfig config_;
  common::Rng rng_;
  nn::Embedding embedding_;
  nn::MultiHeadAttention attention_;
  nn::LayerNorm norm_;
  nn::Gru gru_;
  nn::Linear head_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  // caches for the pieces outside layer objects
  std::size_t cached_t_ = 0;
  nn::Tensor cached_embedded_;
};

}  // namespace phishinghook::ml::models
