#include "ml/models/scsguard.hpp"

#include "common/logging.hpp"

namespace phishinghook::ml::models {

ScsGuardModel::ScsGuardModel(SequenceModelConfig config)
    : config_(config), rng_(config.seed) {
  embedding_ = nn::Embedding(config_.vocab, config_.dim, rng_);
  nn::AttentionConfig attn;
  attn.dim = config_.dim;
  attn.heads = config_.heads;
  attention_ = nn::MultiHeadAttention(attn, rng_);
  norm_ = nn::LayerNorm(config_.dim);
  gru_ = nn::Gru(config_.dim, config_.dim, rng_);
  head_ = nn::Linear(config_.dim, 2, rng_);

  std::vector<nn::Param*> params;
  for (nn::Param* p : embedding_.params()) params.push_back(p);
  for (nn::Param* p : attention_.params()) params.push_back(p);
  for (nn::Param* p : norm_.params()) params.push_back(p);
  for (nn::Param* p : gru_.params()) params.push_back(p);
  for (nn::Param* p : head_.params()) params.push_back(p);
  nn::AdamConfig adam;
  adam.learning_rate = config_.learning_rate;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(std::move(params), adam);
}

nn::Tensor ScsGuardModel::forward(const TokenSequence& window) {
  cached_t_ = window.size();
  cached_embedded_ = embedding_.forward(window);
  nn::Tensor attended = cached_embedded_;
  attended.add_(attention_.forward(norm_.forward(cached_embedded_)));
  const nn::Tensor hidden = gru_.forward(attended);  // [T, D]
  // Last hidden state summarizes the sequence.
  nn::Tensor last({1, config_.dim});
  for (std::size_t i = 0; i < config_.dim; ++i) {
    last.at(0, i) = hidden.at(cached_t_ - 1, i);
  }
  return head_.forward(last);
}

void ScsGuardModel::backward(const nn::Tensor& grad_logits) {
  const nn::Tensor grad_last = head_.backward(grad_logits);  // [1, D]
  nn::Tensor grad_hidden({cached_t_, config_.dim});
  for (std::size_t i = 0; i < config_.dim; ++i) {
    grad_hidden.at(cached_t_ - 1, i) = grad_last.at(0, i);
  }
  const nn::Tensor grad_attended = gru_.backward(grad_hidden);
  nn::Tensor grad_embedded = grad_attended;
  grad_embedded.add_(norm_.backward(attention_.backward(grad_attended)));
  embedding_.backward(grad_embedded);
}

void ScsGuardModel::fit(const std::vector<TokenSequence>& sequences,
                        const std::vector<int>& labels) {
  if (sequences.size() != labels.size()) {
    throw InvalidArgument("SCSGuard::fit size mismatch");
  }
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto order = common::random_permutation(sequences.size(), rng_);
    int in_batch = 0;
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const auto windows = make_windows(sequences[idx], config_.max_len,
                                        config_.sliding_window);
      for (const TokenSequence& window : windows) {
        const nn::Tensor logits = forward(window);
        const auto loss = nn::softmax_cross_entropy(
            logits, static_cast<std::size_t>(labels[idx]));
        epoch_loss += loss.loss;
        backward(loss.grad);
      }
      if (++in_batch == config_.batch_size) {
        optimizer_->step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer_->step();
    common::log_debug("SCSGuard epoch ", epoch, " loss ",
                      epoch_loss / static_cast<double>(sequences.size()));
  }
}

std::vector<double> ScsGuardModel::predict_proba(
    const std::vector<TokenSequence>& sequences) {
  std::vector<double> out(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const auto windows =
        make_windows(sequences[i], config_.max_len, config_.sliding_window);
    double positive = 0.0;
    for (const TokenSequence& window : windows) {
      const auto probs = nn::softmax(forward(window));
      positive += probs[1];
    }
    out[i] = positive / static_cast<double>(windows.size());
  }
  return out;
}

}  // namespace phishinghook::ml::models
