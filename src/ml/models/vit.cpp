#include "ml/models/vit.hpp"

#include "common/logging.hpp"

namespace phishinghook::ml::models {

VitModel::VitModel(VitConfig config) : config_(config), rng_(config.base.seed) {
  const std::size_t side = config_.base.image_side;
  if (side % config_.patch != 0) {
    throw InvalidArgument("ViT image side must be divisible by patch size");
  }
  const std::size_t per_side = side / config_.patch;
  n_patches_ = per_side * per_side;
  const std::size_t patch_dim = 3 * config_.patch * config_.patch;

  patch_embed_ = nn::Linear(patch_dim, config_.dim, rng_);
  cls_token_ = nn::Param(nn::Tensor::randn({config_.dim}, 0.02F, rng_));
  positions_ = nn::PositionalEmbedding(n_patches_ + 1, config_.dim, rng_);
  nn::AttentionConfig attn;
  attn.dim = config_.dim;
  attn.heads = config_.heads;
  for (std::size_t l = 0; l < config_.layers; ++l) blocks_.emplace_back(attn, rng_);
  final_norm_ = nn::LayerNorm(config_.dim);
  head_ = nn::Linear(config_.dim, 2, rng_);

  std::vector<nn::Param*> params;
  for (nn::Param* p : patch_embed_.params()) params.push_back(p);
  params.push_back(&cls_token_);
  for (nn::Param* p : positions_.params()) params.push_back(p);
  for (auto& block : blocks_) {
    for (nn::Param* p : block.params()) params.push_back(p);
  }
  for (nn::Param* p : final_norm_.params()) params.push_back(p);
  for (nn::Param* p : head_.params()) params.push_back(p);
  nn::AdamConfig adam;
  adam.learning_rate = config_.base.learning_rate;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(std::move(params), adam);
}

nn::Tensor VitModel::patchify(const nn::Tensor& image) const {
  const std::size_t side = config_.base.image_side;
  const std::size_t p = config_.patch;
  const std::size_t per_side = side / p;
  nn::Tensor out({n_patches_, 3 * p * p});
  for (std::size_t py = 0; py < per_side; ++py) {
    for (std::size_t px = 0; px < per_side; ++px) {
      const std::size_t patch_idx = py * per_side + px;
      std::size_t k = 0;
      for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t dy = 0; dy < p; ++dy) {
          for (std::size_t dx = 0; dx < p; ++dx) {
            out.at(patch_idx, k++) = image.at3(c, py * p + dy, px * p + dx);
          }
        }
      }
    }
  }
  return out;
}

nn::Tensor VitModel::forward(const nn::Tensor& image) {
  const nn::Tensor patches = patchify(image);
  const nn::Tensor embedded = patch_embed_.forward(patches);  // [N, D]
  nn::Tensor tokens({n_patches_ + 1, config_.dim});
  for (std::size_t i = 0; i < config_.dim; ++i) {
    tokens.at(0, i) = cls_token_.value[i];
  }
  for (std::size_t t = 0; t < n_patches_; ++t) {
    for (std::size_t i = 0; i < config_.dim; ++i) {
      tokens.at(t + 1, i) = embedded.at(t, i);
    }
  }
  nn::Tensor h = positions_.forward(tokens);
  for (auto& block : blocks_) h = block.forward(h);
  h = final_norm_.forward(h);
  nn::Tensor cls({1, config_.dim});
  for (std::size_t i = 0; i < config_.dim; ++i) cls.at(0, i) = h.at(0, i);
  return head_.forward(cls);
}

void VitModel::backward(const nn::Tensor& grad_logits) {
  const nn::Tensor grad_cls = head_.backward(grad_logits);
  nn::Tensor grad_h({n_patches_ + 1, config_.dim});
  for (std::size_t i = 0; i < config_.dim; ++i) {
    grad_h.at(0, i) = grad_cls.at(0, i);
  }
  grad_h = final_norm_.backward(grad_h);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    grad_h = it->backward(grad_h);
  }
  positions_.backward(grad_h);
  nn::Tensor grad_embedded({n_patches_, config_.dim});
  for (std::size_t i = 0; i < config_.dim; ++i) {
    cls_token_.grad[i] += grad_h.at(0, i);
  }
  for (std::size_t t = 0; t < n_patches_; ++t) {
    for (std::size_t i = 0; i < config_.dim; ++i) {
      grad_embedded.at(t, i) = grad_h.at(t + 1, i);
    }
  }
  patch_embed_.backward(grad_embedded);  // image grads discarded
}

void VitModel::fit(const std::vector<nn::Tensor>& images,
                   const std::vector<int>& labels) {
  if (images.size() != labels.size()) {
    throw InvalidArgument("ViT::fit size mismatch");
  }
  for (int epoch = 0; epoch < config_.base.epochs; ++epoch) {
    const auto order = common::random_permutation(images.size(), rng_);
    int in_batch = 0;
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const nn::Tensor logits = forward(images[idx]);
      const auto loss = nn::softmax_cross_entropy(
          logits, static_cast<std::size_t>(labels[idx]));
      epoch_loss += loss.loss;
      backward(loss.grad);
      if (++in_batch == config_.base.batch_size) {
        optimizer_->step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer_->step();
    common::log_debug("ViT epoch ", epoch, " loss ",
                      epoch_loss / static_cast<double>(images.size()));
  }
}

std::vector<double> VitModel::predict_proba(
    const std::vector<nn::Tensor>& images) {
  std::vector<double> out(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    out[i] = nn::softmax(forward(images[i]))[1];
  }
  return out;
}

}  // namespace phishinghook::ml::models
