// Shared plumbing for the sequence (language) models: a common config and
// the fit/predict interface over token-id sequences.
//
// All sequence models consume `TokenSequence`s produced by the feature
// layer (bigram ids for SCSGuard, byte/opcode tokens for GPT-2 / T5) and
// classify single samples; minibatch gradients are accumulated across
// samples before each optimizer step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/nn/loss.hpp"

namespace phishinghook::ml::models {

using TokenSequence = std::vector<std::size_t>;

struct SequenceModelConfig {
  std::size_t vocab = 4096;
  std::size_t dim = 32;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t max_len = 160;    ///< window length (the alpha truncation)
  int epochs = 5;
  int batch_size = 16;
  float learning_rate = 2e-3F;
  std::uint64_t seed = 29;
  /// beta mode: classify every max_len-sized window (stride = max_len / 2)
  /// and average the logits, instead of truncating to the first window.
  bool sliding_window = false;
};

/// Interface shared by SCSGuard, GPT-2 and T5.
class SequenceClassifierModel {
 public:
  virtual ~SequenceClassifierModel() = default;

  virtual void fit(const std::vector<TokenSequence>& sequences,
                   const std::vector<int>& labels) = 0;
  virtual std::vector<double> predict_proba(
      const std::vector<TokenSequence>& sequences) = 0;
  virtual std::string name() const = 0;
};

/// Splits `tokens` into the windows the model sees: one truncated window in
/// alpha mode, half-overlapping windows covering the whole sequence in beta
/// mode. Never returns an empty list (short inputs yield one short window).
std::vector<TokenSequence> make_windows(const TokenSequence& tokens,
                                        std::size_t max_len,
                                        bool sliding_window);

}  // namespace phishinghook::ml::models
