#include "ml/models/escort.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace phishinghook::ml::models {

EscortModel::EscortModel(EscortConfig config)
    : config_(config), rng_(config.seed) {
  embedding_ = nn::Embedding(config_.vocab, config_.embed_dim, rng_);
  fc1_ = nn::Linear(config_.embed_dim, 2 * config_.feature_dim, rng_);
  fc2_ = nn::Linear(2 * config_.feature_dim, config_.feature_dim, rng_);
  vuln_branch_ = nn::Linear(
      config_.feature_dim,
      static_cast<std::size_t>(config_.vulnerability_classes), rng_);
  phishing_branch_ = nn::Linear(config_.feature_dim, 2, rng_);
}

int EscortModel::vulnerability_class(const TokenSequence& tokens) {
  bool has_delegatecall = false;
  bool has_selfdestruct = false;
  std::size_t arithmetic = 0;
  for (std::size_t token : tokens) {
    if (token == 0xF4) has_delegatecall = true;
    if (token == 0xFF) has_selfdestruct = true;
    if (token >= 0x01 && token <= 0x0B) ++arithmetic;
  }
  if (has_delegatecall) return 0;
  if (!tokens.empty() &&
      static_cast<double>(arithmetic) / static_cast<double>(tokens.size()) >
          0.08) {
    return 1;
  }
  if (has_selfdestruct) return 2;
  return 3;
}

nn::Tensor EscortModel::extract(const TokenSequence& window) {
  cached_t_ = window.size();
  const nn::Tensor embedded = embedding_.forward(window);  // [T, E]
  nn::Tensor pooled({1, config_.embed_dim});
  for (std::size_t t = 0; t < cached_t_; ++t) {
    for (std::size_t i = 0; i < config_.embed_dim; ++i) {
      pooled.at(0, i) += embedded.at(t, i);
    }
  }
  pooled.scale_(1.0F / static_cast<float>(cached_t_));
  return act2_.forward(fc2_.forward(act1_.forward(fc1_.forward(pooled))));
}

void EscortModel::extract_backward(const nn::Tensor& grad_features) {
  const nn::Tensor grad_pooled =
      fc1_.backward(act1_.backward(fc2_.backward(act2_.backward(grad_features))));
  nn::Tensor grad_embedded({cached_t_, config_.embed_dim});
  const float inv = 1.0F / static_cast<float>(cached_t_);
  for (std::size_t t = 0; t < cached_t_; ++t) {
    for (std::size_t i = 0; i < config_.embed_dim; ++i) {
      grad_embedded.at(t, i) = grad_pooled.at(0, i) * inv;
    }
  }
  embedding_.backward(grad_embedded);
}

void EscortModel::fit(const std::vector<TokenSequence>& sequences,
                      const std::vector<int>& labels) {
  if (sequences.size() != labels.size()) {
    throw InvalidArgument("ESCORT::fit size mismatch");
  }

  std::vector<TokenSequence> windows(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    windows[i] = make_windows(sequences[i], config_.max_len,
                              /*sliding_window=*/false)
                     .front();
  }

  // --- phase 1: multi-class vulnerability pretraining ---------------------
  std::vector<int> vuln_labels(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    vuln_labels[i] = vulnerability_class(sequences[i]);
  }
  {
    std::vector<nn::Param*> params;
    for (nn::Param* p : embedding_.params()) params.push_back(p);
    for (nn::Param* p : fc1_.params()) params.push_back(p);
    for (nn::Param* p : fc2_.params()) params.push_back(p);
    for (nn::Param* p : vuln_branch_.params()) params.push_back(p);
    nn::AdamConfig adam;
    adam.learning_rate = config_.learning_rate;
    nn::AdamOptimizer optimizer(std::move(params), adam);

    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      const auto order = common::random_permutation(sequences.size(), rng_);
      int in_batch = 0;
      for (std::size_t idx : order) {
        const nn::Tensor features = extract(windows[idx]);
        const nn::Tensor logits = vuln_branch_.forward(features);
        const auto loss = nn::softmax_cross_entropy(
            logits, static_cast<std::size_t>(vuln_labels[idx]));
        extract_backward(vuln_branch_.backward(loss.grad));
        if (++in_batch == config_.batch_size) {
          optimizer.step();
          in_batch = 0;
        }
      }
      if (in_batch > 0) optimizer.step();
    }
  }

  // --- phase 2: frozen extractor, new phishing branch ---------------------
  {
    nn::AdamConfig adam;
    adam.learning_rate = config_.learning_rate;
    nn::AdamOptimizer optimizer(phishing_branch_.params(), adam);
    // The extractor's own gradient buffers stay untouched: only the branch
    // is registered with the optimizer and extract_backward is never called.
    for (int epoch = 0; epoch < config_.transfer_epochs; ++epoch) {
      const auto order = common::random_permutation(sequences.size(), rng_);
      int in_batch = 0;
      for (std::size_t idx : order) {
        const nn::Tensor features = extract(windows[idx]);
        const nn::Tensor logits = phishing_branch_.forward(features);
        const auto loss = nn::softmax_cross_entropy(
            logits, static_cast<std::size_t>(labels[idx]));
        (void)phishing_branch_.backward(loss.grad);
        if (++in_batch == config_.batch_size) {
          optimizer.step();
          in_batch = 0;
        }
      }
      if (in_batch > 0) optimizer.step();
    }
  }
}

std::vector<double> EscortModel::predict_proba(
    const std::vector<TokenSequence>& sequences) {
  std::vector<double> out(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const TokenSequence window =
        make_windows(sequences[i], config_.max_len, false).front();
    const nn::Tensor logits = phishing_branch_.forward(extract(window));
    out[i] = nn::softmax(logits)[1];
  }
  return out;
}

}  // namespace phishinghook::ml::models
