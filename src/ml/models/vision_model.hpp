// Shared interface for the vision models, which consume [3, S, S] RGB
// tensors produced by the feature layer (R2D2 byte-color images or
// frequency-encoded images).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/nn/loss.hpp"

namespace phishinghook::ml::models {

struct VisionModelConfig {
  std::size_t image_side = 24;  ///< square side (paper: 224; CPU-scaled)
  int epochs = 5;
  int batch_size = 16;
  float learning_rate = 2e-3F;
  std::uint64_t seed = 31;
};

class ImageClassifierModel {
 public:
  virtual ~ImageClassifierModel() = default;

  virtual void fit(const std::vector<nn::Tensor>& images,
                   const std::vector<int>& labels) = 0;
  virtual std::vector<double> predict_proba(
      const std::vector<nn::Tensor>& images) = 0;
  virtual std::string name() const = 0;
};

}  // namespace phishinghook::ml::models
