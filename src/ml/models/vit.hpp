// Vision Transformer (Dosovitskiy et al., ICLR 2021), CPU-scaled.
//
// The paper fine-tunes an ImageNet-pretrained ViT-B/16 on 224x224 bytecode
// images; here the same architecture — non-overlapping patch embedding, a
// learned CLS token, absolute positional embeddings, pre-LN transformer
// blocks, CLS-head classification — is trained from random init on smaller
// images (documented substitution in DESIGN.md).
#pragma once

#include <memory>

#include "ml/nn/transformer.hpp"
#include "ml/models/vision_model.hpp"

namespace phishinghook::ml::models {

struct VitConfig {
  VisionModelConfig base;
  std::size_t patch = 4;   ///< patch side (paper: 16)
  std::size_t dim = 32;
  std::size_t heads = 4;
  std::size_t layers = 2;
};

class VitModel final : public ImageClassifierModel {
 public:
  explicit VitModel(VitConfig config = {});

  void fit(const std::vector<nn::Tensor>& images,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<nn::Tensor>& images) override;
  std::string name() const override { return "ViT"; }

 private:
  nn::Tensor forward(const nn::Tensor& image);
  void backward(const nn::Tensor& grad_logits);

  /// [3, S, S] -> [n_patches, patch*patch*3] flattened patches.
  nn::Tensor patchify(const nn::Tensor& image) const;

  VitConfig config_;
  common::Rng rng_;
  std::size_t n_patches_ = 0;
  nn::Linear patch_embed_;
  nn::Param cls_token_;
  nn::PositionalEmbedding positions_;
  std::vector<nn::TransformerBlock> blocks_;
  nn::LayerNorm final_norm_;
  nn::Linear head_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
};

}  // namespace phishinghook::ml::models
