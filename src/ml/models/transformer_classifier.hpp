// Transformer-based sequence classifiers: the shared implementation behind
// the GPT-2 and T5 models.
//
// GPT-2 mode: decoder-only — causal attention, learned absolute positional
// embeddings, the last token's hidden state feeds the classification head
// (the standard GPT-2 sequence-classification recipe).
// T5 mode: encoder-only — bidirectional attention with learned
// relative-position bias and mean pooling over the sequence.
//
// The paper fine-tunes HuggingFace checkpoints; pretrained weights are not
// available here, so an optional next-token "pretext" warm-up on the
// training corpus stands in for pretraining (documented substitution), and
// the architecture is width/depth-scaled for CPU.
#pragma once

#include <memory>

#include "ml/nn/transformer.hpp"
#include "ml/models/sequence_model.hpp"

namespace phishinghook::ml::models {

struct TransformerClassifierConfig {
  SequenceModelConfig base;
  bool causal = true;           ///< GPT-2: true, T5: false
  bool relative_bias = false;   ///< T5's position mechanism
  bool mean_pool = false;       ///< T5 pools; GPT-2 takes the last token
  int pretext_epochs = 1;       ///< next-token warm-up epochs (0 disables)
};

class TransformerClassifier final : public SequenceClassifierModel {
 public:
  TransformerClassifier(TransformerClassifierConfig config, std::string name);

  void fit(const std::vector<TokenSequence>& sequences,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<TokenSequence>& sequences) override;
  std::string name() const override { return name_; }

 private:
  /// Hidden states [T, D] after the block stack.
  nn::Tensor encode(const TokenSequence& window);
  /// Backprop from hidden-state grads down to the embeddings.
  void decode_backward(const nn::Tensor& grad_hidden);

  nn::Tensor classify_forward(const TokenSequence& window);
  void classify_backward(const nn::Tensor& grad_logits);

  void pretext_warmup(const std::vector<TokenSequence>& sequences);

  TransformerClassifierConfig config_;
  std::string name_;
  common::Rng rng_;
  nn::Embedding embedding_;
  nn::PositionalEmbedding positions_;  // used when !relative_bias
  std::vector<nn::TransformerBlock> blocks_;
  nn::LayerNorm final_norm_;
  nn::Linear head_;      // -> 2 classes
  nn::Linear lm_head_;   // -> vocab (pretext only)
  std::unique_ptr<nn::AdamOptimizer> optimizer_;

  std::size_t cached_t_ = 0;
};

/// GPT-2 configuration (alpha: truncation / beta: sliding window).
TransformerClassifierConfig gpt2_config(SequenceModelConfig base,
                                        bool beta_variant);

/// T5 configuration (alpha / beta as above).
TransformerClassifierConfig t5_config(SequenceModelConfig base,
                                      bool beta_variant);

}  // namespace phishinghook::ml::models
