#include "ml/models/eca_efficientnet.hpp"

#include "common/logging.hpp"

namespace phishinghook::ml::models {

nn::Tensor EcaEfficientNetModel::MbConvBlock::forward(const nn::Tensor& x) {
  cached_input = x;
  nn::Tensor h = act1.forward(expand.forward(x));
  h = act2.forward(depthwise.forward(h));
  h = eca.forward(h);
  h = project.forward(h);
  if (residual) h.add_(x);
  return h;
}

nn::Tensor EcaEfficientNetModel::MbConvBlock::backward(
    const nn::Tensor& grad_out) {
  nn::Tensor g = project.backward(grad_out);
  g = eca.backward(g);
  g = act2.backward(g);
  g = depthwise.backward(g);
  g = act1.backward(g);
  g = expand.backward(g);
  if (residual) g.add_(grad_out);
  return g;
}

std::vector<nn::Param*> EcaEfficientNetModel::MbConvBlock::params() {
  std::vector<nn::Param*> out;
  for (nn::Param* p : expand.params()) out.push_back(p);
  for (nn::Param* p : depthwise.params()) out.push_back(p);
  for (nn::Param* p : eca.params()) out.push_back(p);
  for (nn::Param* p : project.params()) out.push_back(p);
  return out;
}

EcaEfficientNetModel::EcaEfficientNetModel(EcaEfficientNetConfig config)
    : config_(config), rng_(config.base.seed) {
  // Stem: 3x3 stride-2 conv, the EfficientNet opening move.
  nn::Conv2dConfig stem;
  stem.in_channels = 3;
  stem.out_channels = config_.stem_channels;
  stem.kernel = 3;
  stem.stride = 2;
  stem.padding = 1;
  stem_ = nn::Conv2d(stem, rng_);

  std::size_t channels = config_.stem_channels;
  for (std::size_t out_channels : config_.block_channels) {
    MbConvBlock block;
    const std::size_t expanded = channels * config_.expand_ratio;
    nn::Conv2dConfig expand;
    expand.in_channels = channels;
    expand.out_channels = expanded;
    expand.kernel = 1;
    expand.stride = 1;
    expand.padding = 0;
    block.expand = nn::Conv2d(expand, rng_);
    block.depthwise = nn::DepthwiseConv2d(expanded, 3, 1, 1, rng_);
    block.eca = nn::Eca(expanded, config_.eca_kernel, rng_);
    nn::Conv2dConfig project;
    project.in_channels = expanded;
    project.out_channels = out_channels;
    project.kernel = 1;
    project.stride = 1;
    project.padding = 0;
    block.project = nn::Conv2d(project, rng_);
    block.residual = out_channels == channels;
    blocks_.push_back(std::move(block));
    channels = out_channels;
  }
  head_ = nn::Linear(channels, 2, rng_);

  std::vector<nn::Param*> params;
  for (nn::Param* p : stem_.params()) params.push_back(p);
  for (auto& block : blocks_) {
    for (nn::Param* p : block.params()) params.push_back(p);
  }
  for (nn::Param* p : head_.params()) params.push_back(p);
  nn::AdamConfig adam;
  adam.learning_rate = config_.base.learning_rate;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(std::move(params), adam);
}

nn::Tensor EcaEfficientNetModel::forward(const nn::Tensor& image) {
  nn::Tensor h = stem_act_.forward(stem_.forward(image));
  for (auto& block : blocks_) h = block.forward(h);
  return head_.forward(pool_.forward(h));
}

void EcaEfficientNetModel::backward(const nn::Tensor& grad_logits) {
  nn::Tensor g = pool_.backward(head_.backward(grad_logits));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = it->backward(g);
  }
  stem_.backward(stem_act_.backward(g));  // image grads discarded
}

void EcaEfficientNetModel::fit(const std::vector<nn::Tensor>& images,
                               const std::vector<int>& labels) {
  if (images.size() != labels.size()) {
    throw InvalidArgument("ECA+EfficientNet::fit size mismatch");
  }
  for (int epoch = 0; epoch < config_.base.epochs; ++epoch) {
    const auto order = common::random_permutation(images.size(), rng_);
    int in_batch = 0;
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const nn::Tensor logits = forward(images[idx]);
      const auto loss = nn::softmax_cross_entropy(
          logits, static_cast<std::size_t>(labels[idx]));
      epoch_loss += loss.loss;
      backward(loss.grad);
      if (++in_batch == config_.base.batch_size) {
        optimizer_->step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer_->step();
    common::log_debug("ECA+EfficientNet epoch ", epoch, " loss ",
                      epoch_loss / static_cast<double>(images.size()));
  }
}

std::vector<double> EcaEfficientNetModel::predict_proba(
    const std::vector<nn::Tensor>& images) {
  std::vector<double> out(images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    out[i] = nn::softmax(forward(images[i]))[1];
  }
  return out;
}

}  // namespace phishinghook::ml::models
