#include "ml/models/sequence_model.hpp"

#include <algorithm>

namespace phishinghook::ml::models {

std::vector<TokenSequence> make_windows(const TokenSequence& tokens,
                                        std::size_t max_len,
                                        bool sliding_window) {
  std::vector<TokenSequence> windows;
  if (tokens.size() <= max_len || !sliding_window) {
    windows.emplace_back(tokens.begin(),
                         tokens.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(tokens.size(), max_len)));
    if (windows.back().empty()) windows.back().push_back(0);
    return windows;
  }
  const std::size_t stride = std::max<std::size_t>(1, max_len / 2);
  for (std::size_t start = 0; start < tokens.size(); start += stride) {
    const std::size_t end = std::min(tokens.size(), start + max_len);
    windows.emplace_back(tokens.begin() + static_cast<std::ptrdiff_t>(start),
                         tokens.begin() + static_cast<std::ptrdiff_t>(end));
    if (end == tokens.size()) break;
  }
  return windows;
}

}  // namespace phishinghook::ml::models
