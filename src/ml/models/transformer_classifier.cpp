#include "ml/models/transformer_classifier.hpp"

#include "common/logging.hpp"

namespace phishinghook::ml::models {

TransformerClassifier::TransformerClassifier(
    TransformerClassifierConfig config, std::string name)
    : config_(config), name_(std::move(name)), rng_(config.base.seed) {
  const auto& base = config_.base;
  embedding_ = nn::Embedding(base.vocab, base.dim, rng_);
  if (!config_.relative_bias) {
    positions_ = nn::PositionalEmbedding(base.max_len, base.dim, rng_);
  }
  nn::AttentionConfig attn;
  attn.dim = base.dim;
  attn.heads = base.heads;
  attn.causal = config_.causal;
  attn.max_rel_distance = config_.relative_bias ? 16 : 0;
  for (std::size_t l = 0; l < base.layers; ++l) {
    blocks_.emplace_back(attn, rng_);
  }
  final_norm_ = nn::LayerNorm(base.dim);
  head_ = nn::Linear(base.dim, 2, rng_);
  lm_head_ = nn::Linear(base.dim, base.vocab, rng_);

  std::vector<nn::Param*> params;
  for (nn::Param* p : embedding_.params()) params.push_back(p);
  if (!config_.relative_bias) {
    for (nn::Param* p : positions_.params()) params.push_back(p);
  }
  for (auto& block : blocks_) {
    for (nn::Param* p : block.params()) params.push_back(p);
  }
  for (nn::Param* p : final_norm_.params()) params.push_back(p);
  for (nn::Param* p : head_.params()) params.push_back(p);
  for (nn::Param* p : lm_head_.params()) params.push_back(p);
  nn::AdamConfig adam;
  adam.learning_rate = base.learning_rate;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(std::move(params), adam);
}

nn::Tensor TransformerClassifier::encode(const TokenSequence& window) {
  cached_t_ = window.size();
  nn::Tensor h = embedding_.forward(window);
  if (!config_.relative_bias) h = positions_.forward(h);
  for (auto& block : blocks_) h = block.forward(h);
  return final_norm_.forward(h);
}

void TransformerClassifier::decode_backward(const nn::Tensor& grad_hidden) {
  nn::Tensor g = final_norm_.backward(grad_hidden);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = it->backward(g);
  }
  if (!config_.relative_bias) positions_.backward(g);
  embedding_.backward(g);
}

nn::Tensor TransformerClassifier::classify_forward(const TokenSequence& window) {
  const nn::Tensor h = encode(window);  // [T, D]
  const std::size_t dim = config_.base.dim;
  nn::Tensor pooled({1, dim});
  if (config_.mean_pool) {
    for (std::size_t t = 0; t < cached_t_; ++t) {
      for (std::size_t i = 0; i < dim; ++i) pooled.at(0, i) += h.at(t, i);
    }
    pooled.scale_(1.0F / static_cast<float>(cached_t_));
  } else {
    for (std::size_t i = 0; i < dim; ++i) {
      pooled.at(0, i) = h.at(cached_t_ - 1, i);
    }
  }
  return head_.forward(pooled);
}

void TransformerClassifier::classify_backward(const nn::Tensor& grad_logits) {
  const nn::Tensor grad_pooled = head_.backward(grad_logits);  // [1, D]
  const std::size_t dim = config_.base.dim;
  nn::Tensor grad_hidden({cached_t_, dim});
  if (config_.mean_pool) {
    const float inv = 1.0F / static_cast<float>(cached_t_);
    for (std::size_t t = 0; t < cached_t_; ++t) {
      for (std::size_t i = 0; i < dim; ++i) {
        grad_hidden.at(t, i) = grad_pooled.at(0, i) * inv;
      }
    }
  } else {
    for (std::size_t i = 0; i < dim; ++i) {
      grad_hidden.at(cached_t_ - 1, i) = grad_pooled.at(0, i);
    }
  }
  decode_backward(grad_hidden);
}

void TransformerClassifier::pretext_warmup(
    const std::vector<TokenSequence>& sequences) {
  // Next-token prediction on the unlabeled windows: the stand-in for the
  // HuggingFace pretraining prior. Only a causal model can predict the next
  // token without leakage, so T5-mode uses masked positions equivalently by
  // predicting the final token of each window.
  for (int epoch = 0; epoch < config_.pretext_epochs; ++epoch) {
    const auto order = common::random_permutation(sequences.size(), rng_);
    int in_batch = 0;
    for (std::size_t idx : order) {
      const auto windows = make_windows(sequences[idx], config_.base.max_len,
                                        /*sliding_window=*/false);
      const TokenSequence& window = windows.front();
      if (window.size() < 2) continue;
      const nn::Tensor h = encode(window);
      const std::size_t dim = config_.base.dim;
      nn::Tensor grad_hidden({cached_t_, dim});
      if (config_.causal) {
        // Predict token t+1 from position t, a few sampled positions.
        const std::size_t samples =
            std::min<std::size_t>(4, window.size() - 1);
        for (std::size_t s = 0; s < samples; ++s) {
          const std::size_t t = rng_.next_below(window.size() - 1);
          nn::Tensor row({1, dim});
          for (std::size_t i = 0; i < dim; ++i) row.at(0, i) = h.at(t, i);
          const nn::Tensor logits = lm_head_.forward(row);
          const auto loss = nn::softmax_cross_entropy(logits, window[t + 1]);
          const nn::Tensor grad_row = lm_head_.backward(loss.grad);
          for (std::size_t i = 0; i < dim; ++i) {
            grad_hidden.at(t, i) += grad_row.at(0, i);
          }
        }
      } else {
        // Predict the final token from the mean of the preceding ones.
        nn::Tensor row({1, dim});
        const std::size_t t_last = window.size() - 1;
        for (std::size_t t = 0; t < t_last; ++t) {
          for (std::size_t i = 0; i < dim; ++i) row.at(0, i) += h.at(t, i);
        }
        row.scale_(1.0F / static_cast<float>(t_last));
        const nn::Tensor logits = lm_head_.forward(row);
        const auto loss = nn::softmax_cross_entropy(logits, window[t_last]);
        const nn::Tensor grad_row = lm_head_.backward(loss.grad);
        const float inv = 1.0F / static_cast<float>(t_last);
        for (std::size_t t = 0; t < t_last; ++t) {
          for (std::size_t i = 0; i < dim; ++i) {
            grad_hidden.at(t, i) += grad_row.at(0, i) * inv;
          }
        }
      }
      decode_backward(grad_hidden);
      if (++in_batch == config_.base.batch_size) {
        optimizer_->step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer_->step();
  }
}

void TransformerClassifier::fit(const std::vector<TokenSequence>& sequences,
                                const std::vector<int>& labels) {
  if (sequences.size() != labels.size()) {
    throw InvalidArgument(name_ + "::fit size mismatch");
  }
  if (config_.pretext_epochs > 0) pretext_warmup(sequences);

  for (int epoch = 0; epoch < config_.base.epochs; ++epoch) {
    const auto order = common::random_permutation(sequences.size(), rng_);
    int in_batch = 0;
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const auto windows = make_windows(sequences[idx], config_.base.max_len,
                                        config_.base.sliding_window);
      for (const TokenSequence& window : windows) {
        const nn::Tensor logits = classify_forward(window);
        const auto loss = nn::softmax_cross_entropy(
            logits, static_cast<std::size_t>(labels[idx]));
        epoch_loss += loss.loss;
        classify_backward(loss.grad);
      }
      if (++in_batch == config_.base.batch_size) {
        optimizer_->step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer_->step();
    common::log_debug(name_, " epoch ", epoch, " loss ",
                      epoch_loss / static_cast<double>(sequences.size()));
  }
}

std::vector<double> TransformerClassifier::predict_proba(
    const std::vector<TokenSequence>& sequences) {
  std::vector<double> out(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const auto windows = make_windows(sequences[i], config_.base.max_len,
                                      config_.base.sliding_window);
    double positive = 0.0;
    for (const TokenSequence& window : windows) {
      positive += nn::softmax(classify_forward(window))[1];
    }
    out[i] = positive / static_cast<double>(windows.size());
  }
  return out;
}

TransformerClassifierConfig gpt2_config(SequenceModelConfig base,
                                        bool beta_variant) {
  TransformerClassifierConfig config;
  base.sliding_window = beta_variant;
  config.base = base;
  config.causal = true;
  config.relative_bias = false;
  config.mean_pool = false;
  return config;
}

TransformerClassifierConfig t5_config(SequenceModelConfig base,
                                      bool beta_variant) {
  TransformerClassifierConfig config;
  base.sliding_window = beta_variant;
  config.base = base;
  config.causal = false;
  config.relative_bias = true;
  config.mean_pool = true;
  return config;
}

}  // namespace phishinghook::ml::models
