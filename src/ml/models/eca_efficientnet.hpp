// ECA+EfficientNet (Zhou et al., CMC 2023), CPU-scaled.
//
// The paper's fraud detector: bytecode RGB images feed a modified
// EfficientNet-B0 whose squeeze-excite modules are replaced with ECA
// (efficient channel attention), followed by global average pooling and a
// fully connected classifier. Reproduced here as a stem convolution plus a
// stack of MBConv-style blocks (pointwise expand -> depthwise -> ECA ->
// pointwise project, residual where shapes allow) at reduced width/depth.
#pragma once

#include <memory>

#include "ml/nn/activations.hpp"
#include "ml/nn/conv.hpp"
#include "ml/nn/linear.hpp"
#include "ml/models/vision_model.hpp"

namespace phishinghook::ml::models {

struct EcaEfficientNetConfig {
  VisionModelConfig base;
  std::size_t stem_channels = 8;
  std::vector<std::size_t> block_channels = {12, 16};  ///< one MBConv each
  std::size_t expand_ratio = 2;
  std::size_t eca_kernel = 3;
};

class EcaEfficientNetModel final : public ImageClassifierModel {
 public:
  explicit EcaEfficientNetModel(EcaEfficientNetConfig config = {});

  void fit(const std::vector<nn::Tensor>& images,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<nn::Tensor>& images) override;
  std::string name() const override { return "ECA+EfficientNet"; }

 private:
  struct MbConvBlock {
    nn::Conv2d expand;        // 1x1
    nn::Silu act1;
    nn::DepthwiseConv2d depthwise;
    nn::Silu act2;
    nn::Eca eca;
    nn::Conv2d project;       // 1x1
    bool residual = false;
    nn::Tensor cached_input;  // for the residual path

    nn::Tensor forward(const nn::Tensor& x);
    nn::Tensor backward(const nn::Tensor& grad_out);
    std::vector<nn::Param*> params();
  };

  nn::Tensor forward(const nn::Tensor& image);
  void backward(const nn::Tensor& grad_logits);

  EcaEfficientNetConfig config_;
  common::Rng rng_;
  nn::Conv2d stem_;
  nn::Silu stem_act_;
  std::vector<MbConvBlock> blocks_;
  nn::GlobalAvgPool pool_;
  nn::Linear head_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
};

}  // namespace phishinghook::ml::models
