// ESCORT (Sendner et al., NDSS 2023), reimplemented from the paper's
// description and used — as in PhishingHook — outside its design domain.
//
// ESCORT embeds contract bytecode into a vector space with a shared feature
// extractor and attaches one branch (a small DNN) per vulnerability class.
// Its second operational mode detects *new* vulnerability types by transfer
// learning: the extractor is frozen and only a fresh branch is trained.
//
// PhishingHook exercises exactly that transfer mode for phishing: phase 1
// pretrains the extractor on technical vulnerability classes (derived here
// from bytecode structure: delegatecall/proxy profile, arithmetic-overflow
// profile, selfdestruct reachability, unchecked external calls — the
// classes ESCORT's corpus covers), then phase 2 freezes it and trains a
// binary phishing branch. The paper's finding — near-chance accuracy,
// because phishing is social engineering, not a code defect — emerges from
// the same mechanism: the frozen embedding preserves code-defect structure,
// not intent.
#pragma once

#include <memory>

#include "ml/nn/activations.hpp"
#include "ml/nn/linear.hpp"
#include "ml/models/sequence_model.hpp"

namespace phishinghook::ml::models {

struct EscortConfig {
  std::size_t vocab = 257;       ///< byte tokens + pad
  std::size_t embed_dim = 24;
  std::size_t feature_dim = 16;  ///< the shared embedding space
  std::size_t max_len = 256;
  int vulnerability_classes = 4;
  int pretrain_epochs = 4;
  int transfer_epochs = 6;
  int batch_size = 16;
  float learning_rate = 2e-3F;
  std::uint64_t seed = 37;
};

class EscortModel final : public SequenceClassifierModel {
 public:
  explicit EscortModel(EscortConfig config = {});

  /// Phase 1 + phase 2: pretrains the extractor on derived vulnerability
  /// classes over `sequences`, then freezes it and fits the phishing branch
  /// on `labels`.
  void fit(const std::vector<TokenSequence>& sequences,
           const std::vector<int>& labels) override;
  std::vector<double> predict_proba(
      const std::vector<TokenSequence>& sequences) override;
  std::string name() const override { return "ESCORT"; }

  /// The derived technical class of a bytecode token sequence (exposed for
  /// tests): 0 = proxy/delegatecall profile, 1 = arithmetic-heavy,
  /// 2 = selfdestruct-reachable, 3 = plain storage/logic.
  static int vulnerability_class(const TokenSequence& tokens);

 private:
  /// Mean-pooled embedding -> two-layer extractor -> feature vector [1, F].
  nn::Tensor extract(const TokenSequence& window);
  void extract_backward(const nn::Tensor& grad_features);

  EscortConfig config_;
  common::Rng rng_;
  nn::Embedding embedding_;
  nn::Linear fc1_, fc2_;  // the shared extractor
  nn::ReLU act1_, act2_;
  nn::Linear vuln_branch_;      // phase-1 head (num classes)
  nn::Linear phishing_branch_;  // phase-2 head (2 classes)
  std::size_t cached_t_ = 0;
};

}  // namespace phishinghook::ml::models
