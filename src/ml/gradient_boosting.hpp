// XGBoost-style gradient boosting (HSC category).
//
// Second-order logistic boosting with depth-wise regression trees and the
// exact greedy split finder: per-split gain
//   0.5 [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda) ] - gamma
// with shrinkage, row subsampling and column subsampling — the standard
// XGBoost recipe on a binary logloss objective.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flat_tree.hpp"

namespace phishinghook::ml {

struct GradientBoostingConfig {
  int n_rounds = 150;
  int max_depth = 5;
  double learning_rate = 0.1;
  double lambda = 1.0;        ///< L2 on leaf weights
  double gamma = 0.0;         ///< min gain to split
  double min_child_weight = 1.0;
  double subsample = 1.0;     ///< row fraction per round
  double colsample = 1.0;     ///< feature fraction per round
  std::uint64_t seed = 17;
};

class GradientBoostingClassifier final : public TabularClassifier {
 public:
  explicit GradientBoostingClassifier(GradientBoostingConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;

  /// Batched inference on the flattened SoA ensemble (compiled at fit/load
  /// time); bit-identical to predict_proba_nodewalk.
  std::vector<double> predict_proba(const Matrix& x) const override;

  /// The original per-row node-walk path (equivalence oracle).
  std::vector<double> predict_proba_nodewalk(const Matrix& x) const;

  const FlatTreeEnsemble* flat_ensemble() const override {
    return flat_.empty() ? nullptr : &flat_;
  }

  std::string name() const override { return "XGBoost"; }

  void save(std::ostream& out) const override;
  static GradientBoostingClassifier load_from(std::istream& in);

  /// Raw (pre-sigmoid) score of one row.
  double raw_score(std::span<const double> row) const;

  /// Boosted trees; leaf `value` holds the leaf weight. TreeSHAP-compatible.
  const std::vector<std::vector<TreeNode>>& trees() const { return trees_; }
  double base_score() const { return base_score_; }

 private:
  struct SplitResult {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  int build_tree(const Matrix& x, const std::vector<double>& grad,
                 const std::vector<double>& hess,
                 std::vector<std::size_t>& indices,
                 const std::vector<std::size_t>& features, int depth,
                 std::vector<TreeNode>& tree) const;

  GradientBoostingConfig config_;
  std::vector<std::vector<TreeNode>> trees_;
  double base_score_ = 0.0;
  FlatTreeEnsemble flat_;  ///< rebuilt after fit() and load_from()
};

}  // namespace phishinghook::ml
