// Random Forest — the paper's best-performing model overall (Table II) and
// the subject of the SHAP interpretability study (Fig. 9).
//
// Bootstrap-aggregated CART trees with per-split feature subsampling;
// probability is the mean of the trees' leaf fractions.
#pragma once

#include "ml/decision_tree.hpp"
#include "ml/flat_tree.hpp"

namespace phishinghook::ml {

struct RandomForestConfig {
  int n_trees = 100;
  int max_depth = 14;
  std::size_t min_samples_leaf = 1;
  /// Per-split feature pool; 0 = sqrt(d) (the scikit-learn default).
  std::size_t max_features = 0;
  std::uint64_t seed = 7;
};

class RandomForestClassifier final : public TabularClassifier {
 public:
  explicit RandomForestClassifier(RandomForestConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;

  /// Batched inference on the flattened SoA ensemble (compiled at fit/load
  /// time); bit-identical to predict_proba_nodewalk.
  std::vector<double> predict_proba(const Matrix& x) const override;

  /// The original per-row node-walk path, kept as the equivalence oracle
  /// for the flattened ensemble.
  std::vector<double> predict_proba_nodewalk(const Matrix& x) const;

  const FlatTreeEnsemble* flat_ensemble() const override {
    return flat_.empty() ? nullptr : &flat_;
  }

  std::string name() const override { return "Random Forest"; }

  void save(std::ostream& out) const override;
  static RandomForestClassifier load_from(std::istream& in);

  /// Trained trees (TreeSHAP input).
  const std::vector<DecisionTreeClassifier>& trees() const { return trees_; }

  /// Mean gini importances over trees (normalized).
  std::vector<double> feature_importances() const;

 private:
  RandomForestConfig config_;
  std::vector<DecisionTreeClassifier> trees_;
  std::size_t n_features_ = 0;
  FlatTreeEnsemble flat_;  ///< rebuilt after fit() and load_from()
};

}  // namespace phishinghook::ml
