#include "ml/lightgbm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.hpp"

namespace phishinghook::ml {

namespace {

/// Best split one feature offers for one leaf (per-feature scan result of
/// the parallel split search).
struct FeatureSplit {
  int feature = -1;
  int bin = -1;
  double gain = 0.0;
  double threshold = 0.0;
};

struct LeafCandidate {
  int node_id = -1;                  // index into the growing tree
  std::vector<std::size_t> indices;  // samples in this leaf
  // Best split found for this leaf (feature/bin/gain).
  int feature = -1;
  int bin = -1;
  double gain = 0.0;
  double threshold = 0.0;
};

}  // namespace

LightGbmClassifier::LightGbmClassifier(LightGbmConfig config)
    : config_(config) {}

void LightGbmClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw InvalidArgument("LightGBM::fit size mismatch");
  if (x.rows() == 0) throw InvalidArgument("LightGBM::fit on empty data");
  trees_.clear();

  gbdt::FeatureBinner binner;
  binner.fit(x, config_.max_bins);
  const std::vector<std::uint8_t> binned = binner.transform(x);
  const std::size_t d = x.cols();

  double pos = 0.0;
  for (int label : y) pos += label != 0 ? 1.0 : 0.0;
  const double rate =
      std::clamp(pos / static_cast<double>(y.size()), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(rate / (1.0 - rate));

  std::vector<double> scores(y.size(), base_score_);
  std::vector<double> grad(y.size()), hess(y.size());

  auto find_best_split = [&](LeafCandidate& leaf) {
    leaf.feature = -1;
    leaf.gain = config_.min_gain;
    double g_sum = 0.0, h_sum = 0.0;
    for (std::size_t i : leaf.indices) {
      g_sum += grad[i];
      h_sum += hess[i];
    }
    const double parent_score = g_sum * g_sum / (h_sum + config_.lambda);

    // Parallel over features: each feature builds its own histogram and
    // reports its best (gain, bin); the serial index-ordered reduction below
    // reproduces the serial scan's earliest-feature tie-breaking.
    const std::vector<FeatureSplit> candidates =
        common::parallel_map<FeatureSplit>(d, [&](std::size_t f) {
          FeatureSplit local;
          local.gain = config_.min_gain;
          const int bins = binner.bins(f);
          if (bins < 2) return local;
          std::vector<double> hist_g(static_cast<std::size_t>(bins), 0.0);
          std::vector<double> hist_h(static_cast<std::size_t>(bins), 0.0);
          for (std::size_t i : leaf.indices) {
            const std::uint8_t b = binned[i * d + f];
            hist_g[b] += grad[i];
            hist_h[b] += hess[i];
          }
          double gl = 0.0, hl = 0.0;
          for (int b = 0; b + 1 < bins; ++b) {
            gl += hist_g[static_cast<std::size_t>(b)];
            hl += hist_h[static_cast<std::size_t>(b)];
            const double hr = h_sum - hl;
            if (hl < config_.min_child_weight ||
                hr < config_.min_child_weight) {
              continue;
            }
            const double gr = g_sum - gl;
            const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                       gr * gr / (hr + config_.lambda) -
                                       parent_score);
            if (gain > local.gain) {
              local.gain = gain;
              local.feature = static_cast<int>(f);
              local.bin = b;
              // bin b holds values strictly below cut(f, b); nudge the
              // stored threshold down so the raw-value predicate (<=)
              // matches the bin boundary exactly.
              local.threshold = std::nextafter(
                  binner.cut(f, b), -std::numeric_limits<double>::infinity());
            }
          }
          return local;
        });

    for (const FeatureSplit& candidate : candidates) {
      if (candidate.feature >= 0 && candidate.gain > leaf.gain) {
        leaf.gain = candidate.gain;
        leaf.feature = candidate.feature;
        leaf.bin = candidate.bin;
        leaf.threshold = candidate.threshold;
      }
    }
  };

  for (int round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      const auto gh = gbdt::logistic_grad_hess(scores[i], y[i]);
      grad[i] = gh.grad;
      hess[i] = gh.hess;
    }

    std::vector<TreeNode> tree;
    std::vector<LeafCandidate> leaves;

    // Root.
    {
      LeafCandidate root;
      root.node_id = 0;
      root.indices.resize(y.size());
      for (std::size_t i = 0; i < y.size(); ++i) root.indices[i] = i;
      tree.push_back(TreeNode{});
      find_best_split(root);
      leaves.push_back(std::move(root));
    }

    // Leaf-wise growth: always split the leaf with the largest gain.
    int leaf_count = 1;
    while (leaf_count < config_.num_leaves) {
      int best = -1;
      for (std::size_t l = 0; l < leaves.size(); ++l) {
        if (leaves[l].feature >= 0 &&
            (best < 0 || leaves[l].gain > leaves[static_cast<std::size_t>(best)].gain)) {
          best = static_cast<int>(l);
        }
      }
      if (best < 0) break;  // nothing splittable left

      LeafCandidate chosen = std::move(leaves[static_cast<std::size_t>(best)]);
      leaves.erase(leaves.begin() + best);

      LeafCandidate left, right;
      left.node_id = static_cast<int>(tree.size());
      tree.push_back(TreeNode{});
      right.node_id = static_cast<int>(tree.size());
      tree.push_back(TreeNode{});
      for (std::size_t i : chosen.indices) {
        const std::uint8_t b =
            binned[i * d + static_cast<std::size_t>(chosen.feature)];
        (b <= chosen.bin ? left : right).indices.push_back(i);
      }
      TreeNode& parent = tree[static_cast<std::size_t>(chosen.node_id)];
      parent.feature = chosen.feature;
      parent.threshold = chosen.threshold;
      parent.left = left.node_id;
      parent.right = right.node_id;

      find_best_split(left);
      find_best_split(right);
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
      ++leaf_count;
    }

    // Leaf values with shrinkage; update train scores.
    for (LeafCandidate& leaf : leaves) {
      double g_sum = 0.0, h_sum = 0.0;
      for (std::size_t i : leaf.indices) {
        g_sum += grad[i];
        h_sum += hess[i];
      }
      const double value =
          -config_.learning_rate * g_sum / (h_sum + config_.lambda);
      tree[static_cast<std::size_t>(leaf.node_id)].value = value;
      tree[static_cast<std::size_t>(leaf.node_id)].weight = h_sum;
      for (std::size_t i : leaf.indices) scores[i] += value;
    }
    trees_.push_back(std::move(tree));
  }
  flat_ = FlatTreeEnsemble::from_boosted(trees_, base_score_);
}

double LightGbmClassifier::raw_score(std::span<const double> row) const {
  if (trees_.empty()) throw StateError("LightGBM::predict before fit");
  double score = base_score_;
  for (const auto& tree : trees_) {
    int node = 0;
    while (!tree[static_cast<std::size_t>(node)].is_leaf()) {
      const TreeNode& n = tree[static_cast<std::size_t>(node)];
      node = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
    }
    score += tree[static_cast<std::size_t>(node)].value;
  }
  return score;
}

std::vector<double> LightGbmClassifier::predict_proba(const Matrix& x) const {
  if (trees_.empty()) throw StateError("LightGBM::predict before fit");
  return flat_.predict_proba(x);
}

std::vector<double> LightGbmClassifier::predict_proba_nodewalk(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  common::parallel_for_chunks(
      x.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          out[r] = gbdt::sigmoid(raw_score(x.row(r)));
        }
      });
  return out;
}

}  // namespace phishinghook::ml
