// Uniform interface for the tabular (histogram-feature) classifiers — the
// HSC category of the paper, mirroring scikit-learn's fit/predict_proba.
//
// Binary task throughout: labels are {0 = benign, 1 = phishing} and
// predict_proba returns P(phishing).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.hpp"
#include "ml/metrics.hpp"

namespace phishinghook::ml {

class FlatTreeEnsemble;  // flat_tree.hpp

class TabularClassifier {
 public:
  virtual ~TabularClassifier() = default;

  /// Trains on features `x` (n x d) with binary labels `y` (size n).
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// P(phishing) per row. Requires fit() first (StateError otherwise).
  virtual std::vector<double> predict_proba(const Matrix& x) const = 0;

  /// The compiled branch-free ensemble behind predict_proba, when the
  /// model has one (tree ensembles after fit()/load); nullptr otherwise.
  /// Serving uses this to route batches through FlatTreeEnsemble
  /// explicitly and to export compile stats.
  virtual const FlatTreeEnsemble* flat_ensemble() const { return nullptr; }

  /// Hard labels at the 0.5 threshold.
  std::vector<int> predict(const Matrix& x) const {
    return threshold_predictions(predict_proba(x));
  }

  virtual std::string name() const = 0;

  /// Serializes the fitted model (a self-describing tagged record, see
  /// serialize.cpp). Models without persistence support throw StateError;
  /// the serving artifact path requires it.
  virtual void save(std::ostream& out) const;

  /// Reads back any classifier written by save(), dispatching on the tag.
  /// Throws ParseError on unknown tags or corrupt payloads.
  static std::unique_ptr<TabularClassifier> load(std::istream& in);
};

}  // namespace phishinghook::ml
