// Classifier persistence: the save()/load() hooks declared across the
// tabular-model headers, gathered in one translation unit.
//
// Wire format: every classifier record is a tag string followed by an
// untagged payload. `TabularClassifier::load` reads the tag and dispatches
// to the matching `load_from`. Doubles travel as raw IEEE-754 bits, so a
// loaded model reproduces the in-memory model's predict_proba
// bit-identically — the guarantee the serving artifact relies on.
#include <istream>
#include <ostream>

#include "common/binary_io.hpp"
#include "ml/catboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gradient_boosting.hpp"
#include "ml/lightgbm.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"

namespace phishinghook::ml {

namespace {

constexpr const char* kTreeTag = "phook.dtree.v1";
constexpr const char* kForestTag = "phook.rf.v1";
constexpr const char* kLogRegTag = "phook.logreg.v1";
constexpr const char* kXgbTag = "phook.xgb.v1";
constexpr const char* kLgbmTag = "phook.lgbm.v1";
constexpr const char* kCatBoostTag = "phook.catboost.v1";

// Caps for corrupt length prefixes: far above any model this repo trains,
// far below an accidental multi-gigabyte allocation.
constexpr std::uint64_t kMaxNodes = 1u << 26;
constexpr std::uint64_t kMaxTrees = 1u << 16;

using common::read_double;
using common::read_doubles;
using common::read_i32;
using common::read_string;
using common::read_u64;
using common::write_double;
using common::write_doubles;
using common::write_i32;
using common::write_string;
using common::write_u64;

// Boosted-tree node vectors share the decision tree's node layout.
void write_tree_nodes(std::ostream& out, const std::vector<TreeNode>& tree) {
  write_u64(out, tree.size());
  for (const TreeNode& node : tree) {
    write_i32(out, node.feature);
    write_double(out, node.threshold);
    write_i32(out, node.left);
    write_i32(out, node.right);
    write_double(out, node.value);
    write_double(out, node.weight);
  }
}

std::vector<TreeNode> read_tree_nodes(std::istream& in) {
  const std::uint64_t n_nodes = read_u64(in);
  if (n_nodes > kMaxNodes) throw ParseError("tree node count out of range");
  std::vector<TreeNode> tree(n_nodes);
  for (TreeNode& node : tree) {
    node.feature = read_i32(in);
    node.threshold = read_double(in);
    node.left = read_i32(in);
    node.right = read_i32(in);
    node.value = read_double(in);
    node.weight = read_double(in);
  }
  return tree;
}

}  // namespace

void TabularClassifier::save(std::ostream&) const {
  throw StateError(name() + ": persistence not supported");
}

std::unique_ptr<TabularClassifier> TabularClassifier::load(std::istream& in) {
  const std::string tag = read_string(in, 64);
  if (tag == kTreeTag) {
    return std::make_unique<DecisionTreeClassifier>(
        DecisionTreeClassifier::load_payload(in));
  }
  if (tag == kForestTag || tag == kLogRegTag || tag == kXgbTag ||
      tag == kLgbmTag || tag == kCatBoostTag) {
    // load_from re-reads the tag itself, so rewind over it: tag string =
    // u64 length + bytes.
    in.seekg(-static_cast<std::streamoff>(8 + tag.size()), std::ios::cur);
    if (tag == kForestTag) {
      return std::make_unique<RandomForestClassifier>(
          RandomForestClassifier::load_from(in));
    }
    if (tag == kXgbTag) {
      return std::make_unique<GradientBoostingClassifier>(
          GradientBoostingClassifier::load_from(in));
    }
    if (tag == kLgbmTag) {
      return std::make_unique<LightGbmClassifier>(
          LightGbmClassifier::load_from(in));
    }
    if (tag == kCatBoostTag) {
      return std::make_unique<CatBoostClassifier>(
          CatBoostClassifier::load_from(in));
    }
    return std::make_unique<LogisticRegressionClassifier>(
        LogisticRegressionClassifier::load_from(in));
  }
  throw ParseError("unknown classifier tag '" + tag + "'");
}

// --- DecisionTreeClassifier ---------------------------------------------------

void DecisionTreeClassifier::save_payload(std::ostream& out) const {
  write_i32(out, config_.max_depth);
  write_u64(out, config_.min_samples_leaf);
  write_u64(out, config_.min_samples_split);
  write_u64(out, config_.max_features);
  write_u64(out, config_.seed);
  write_u64(out, n_features_);
  write_u64(out, nodes_.size());
  for (const TreeNode& node : nodes_) {
    write_i32(out, node.feature);
    write_double(out, node.threshold);
    write_i32(out, node.left);
    write_i32(out, node.right);
    write_double(out, node.value);
    write_double(out, node.weight);
  }
  write_doubles(out, importances_);
}

DecisionTreeClassifier DecisionTreeClassifier::load_payload(std::istream& in) {
  DecisionTreeConfig config;
  config.max_depth = read_i32(in);
  config.min_samples_leaf = read_u64(in);
  config.min_samples_split = read_u64(in);
  config.max_features = read_u64(in);
  config.seed = read_u64(in);
  DecisionTreeClassifier tree(config);
  tree.n_features_ = read_u64(in);
  const std::uint64_t n_nodes = read_u64(in);
  if (n_nodes > kMaxNodes) throw ParseError("tree node count out of range");
  tree.nodes_.resize(n_nodes);
  for (TreeNode& node : tree.nodes_) {
    node.feature = read_i32(in);
    node.threshold = read_double(in);
    node.left = read_i32(in);
    node.right = read_i32(in);
    node.value = read_double(in);
    node.weight = read_double(in);
  }
  tree.importances_ = read_doubles(in);
  return tree;
}

void DecisionTreeClassifier::save(std::ostream& out) const {
  write_string(out, kTreeTag);
  save_payload(out);
}

DecisionTreeClassifier DecisionTreeClassifier::load_from(std::istream& in) {
  if (read_string(in, 64) != kTreeTag) {
    throw ParseError("not a decision-tree record");
  }
  return load_payload(in);
}

// --- RandomForestClassifier ---------------------------------------------------

void RandomForestClassifier::save(std::ostream& out) const {
  if (trees_.empty()) throw StateError("RandomForest::save before fit");
  write_string(out, kForestTag);
  write_i32(out, config_.n_trees);
  write_i32(out, config_.max_depth);
  write_u64(out, config_.min_samples_leaf);
  write_u64(out, config_.max_features);
  write_u64(out, config_.seed);
  write_u64(out, n_features_);
  write_u64(out, trees_.size());
  for (const DecisionTreeClassifier& tree : trees_) {
    tree.save_payload(out);
  }
}

RandomForestClassifier RandomForestClassifier::load_from(std::istream& in) {
  if (read_string(in, 64) != kForestTag) {
    throw ParseError("not a random-forest record");
  }
  RandomForestConfig config;
  config.n_trees = read_i32(in);
  config.max_depth = read_i32(in);
  config.min_samples_leaf = read_u64(in);
  config.max_features = read_u64(in);
  config.seed = read_u64(in);
  RandomForestClassifier forest(config);
  forest.n_features_ = read_u64(in);
  const std::uint64_t n_trees = read_u64(in);
  if (n_trees > kMaxTrees) throw ParseError("forest tree count out of range");
  forest.trees_.reserve(n_trees);
  for (std::uint64_t t = 0; t < n_trees; ++t) {
    forest.trees_.push_back(DecisionTreeClassifier::load_payload(in));
  }
  forest.flat_ = FlatTreeEnsemble::from_forest(forest.trees_);
  return forest;
}

// --- GradientBoostingClassifier -----------------------------------------------

void GradientBoostingClassifier::save(std::ostream& out) const {
  if (trees_.empty()) throw StateError("XGBoost::save before fit");
  write_string(out, kXgbTag);
  write_i32(out, config_.n_rounds);
  write_i32(out, config_.max_depth);
  write_double(out, config_.learning_rate);
  write_double(out, config_.lambda);
  write_double(out, config_.gamma);
  write_double(out, config_.min_child_weight);
  write_double(out, config_.subsample);
  write_double(out, config_.colsample);
  write_u64(out, config_.seed);
  write_double(out, base_score_);
  write_u64(out, trees_.size());
  for (const std::vector<TreeNode>& tree : trees_) write_tree_nodes(out, tree);
}

GradientBoostingClassifier GradientBoostingClassifier::load_from(
    std::istream& in) {
  if (read_string(in, 64) != kXgbTag) {
    throw ParseError("not an xgboost record");
  }
  GradientBoostingConfig config;
  config.n_rounds = read_i32(in);
  config.max_depth = read_i32(in);
  config.learning_rate = read_double(in);
  config.lambda = read_double(in);
  config.gamma = read_double(in);
  config.min_child_weight = read_double(in);
  config.subsample = read_double(in);
  config.colsample = read_double(in);
  config.seed = read_u64(in);
  GradientBoostingClassifier model(config);
  model.base_score_ = read_double(in);
  const std::uint64_t n_trees = read_u64(in);
  if (n_trees > kMaxTrees) throw ParseError("xgboost tree count out of range");
  model.trees_.reserve(n_trees);
  for (std::uint64_t t = 0; t < n_trees; ++t) {
    model.trees_.push_back(read_tree_nodes(in));
  }
  model.flat_ = FlatTreeEnsemble::from_boosted(model.trees_, model.base_score_);
  return model;
}

// --- LightGbmClassifier -------------------------------------------------------

void LightGbmClassifier::save(std::ostream& out) const {
  if (trees_.empty()) throw StateError("LightGBM::save before fit");
  write_string(out, kLgbmTag);
  write_i32(out, config_.n_rounds);
  write_i32(out, config_.num_leaves);
  write_i32(out, config_.max_bins);
  write_double(out, config_.learning_rate);
  write_double(out, config_.lambda);
  write_double(out, config_.min_child_weight);
  write_double(out, config_.min_gain);
  write_u64(out, config_.seed);
  write_double(out, base_score_);
  write_u64(out, trees_.size());
  for (const std::vector<TreeNode>& tree : trees_) write_tree_nodes(out, tree);
}

LightGbmClassifier LightGbmClassifier::load_from(std::istream& in) {
  if (read_string(in, 64) != kLgbmTag) {
    throw ParseError("not a lightgbm record");
  }
  LightGbmConfig config;
  config.n_rounds = read_i32(in);
  config.num_leaves = read_i32(in);
  config.max_bins = read_i32(in);
  config.learning_rate = read_double(in);
  config.lambda = read_double(in);
  config.min_child_weight = read_double(in);
  config.min_gain = read_double(in);
  config.seed = read_u64(in);
  LightGbmClassifier model(config);
  model.base_score_ = read_double(in);
  const std::uint64_t n_trees = read_u64(in);
  if (n_trees > kMaxTrees) throw ParseError("lightgbm tree count out of range");
  model.trees_.reserve(n_trees);
  for (std::uint64_t t = 0; t < n_trees; ++t) {
    model.trees_.push_back(read_tree_nodes(in));
  }
  model.flat_ = FlatTreeEnsemble::from_boosted(model.trees_, model.base_score_);
  return model;
}

// --- CatBoostClassifier -------------------------------------------------------

void CatBoostClassifier::save(std::ostream& out) const {
  if (trees_.empty()) throw StateError("CatBoost::save before fit");
  write_string(out, kCatBoostTag);
  write_i32(out, config_.n_rounds);
  write_i32(out, config_.depth);
  write_i32(out, config_.max_bins);
  write_double(out, config_.learning_rate);
  write_double(out, config_.lambda);
  write_double(out, config_.bagging_temperature);
  write_u64(out, config_.seed);
  write_double(out, base_score_);
  write_u64(out, trees_.size());
  for (const ObliviousTree& tree : trees_) {
    write_u64(out, tree.features.size());
    for (int f : tree.features) write_i32(out, f);
    write_doubles(out, tree.thresholds);
    write_doubles(out, tree.leaf_values);
  }
}

CatBoostClassifier CatBoostClassifier::load_from(std::istream& in) {
  if (read_string(in, 64) != kCatBoostTag) {
    throw ParseError("not a catboost record");
  }
  CatBoostConfig config;
  config.n_rounds = read_i32(in);
  config.depth = read_i32(in);
  config.max_bins = read_i32(in);
  config.learning_rate = read_double(in);
  config.lambda = read_double(in);
  config.bagging_temperature = read_double(in);
  config.seed = read_u64(in);
  CatBoostClassifier model(config);
  model.base_score_ = read_double(in);
  const std::uint64_t n_trees = read_u64(in);
  if (n_trees > kMaxTrees) throw ParseError("catboost tree count out of range");
  model.trees_.reserve(n_trees);
  for (std::uint64_t t = 0; t < n_trees; ++t) {
    ObliviousTree tree;
    const std::uint64_t depth = read_u64(in);
    if (depth > 32) throw ParseError("catboost tree depth out of range");
    tree.features.reserve(depth);
    for (std::uint64_t level = 0; level < depth; ++level) {
      tree.features.push_back(read_i32(in));
    }
    tree.thresholds = read_doubles(in);
    tree.leaf_values = read_doubles(in);
    if (tree.thresholds.size() != depth ||
        tree.leaf_values.size() != (std::size_t{1} << depth)) {
      throw ParseError("catboost tree shape mismatch");
    }
    model.trees_.push_back(std::move(tree));
  }
  model.flat_ =
      FlatTreeEnsemble::from_oblivious(model.trees_, model.base_score_);
  return model;
}

// --- LogisticRegressionClassifier ---------------------------------------------

void LogisticRegressionClassifier::save(std::ostream& out) const {
  if (weights_.empty()) throw StateError("LogisticRegression::save before fit");
  write_string(out, kLogRegTag);
  write_double(out, config_.learning_rate);
  write_double(out, config_.l2);
  write_i32(out, config_.epochs);
  write_u64(out, config_.seed);
  write_doubles(out, weights_);
  write_double(out, bias_);
  write_doubles(out, mean_);
  write_doubles(out, stddev_);
}

LogisticRegressionClassifier LogisticRegressionClassifier::load_from(
    std::istream& in) {
  if (read_string(in, 64) != kLogRegTag) {
    throw ParseError("not a logistic-regression record");
  }
  LogisticRegressionConfig config;
  config.learning_rate = read_double(in);
  config.l2 = read_double(in);
  config.epochs = read_i32(in);
  config.seed = read_u64(in);
  LogisticRegressionClassifier model(config);
  model.weights_ = read_doubles(in);
  model.bias_ = read_double(in);
  model.mean_ = read_doubles(in);
  model.stddev_ = read_doubles(in);
  return model;
}

}  // namespace phishinghook::ml
