#include "ml/flat_tree.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "ml/catboost.hpp"
#include "ml/gbdt_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phishinghook::ml {

namespace {

struct FlatInstruments {
  obs::Counter rows = obs::MetricsRegistry::global().counter(
      "ml_flat_predict_rows_total");
  obs::Counter calls = obs::MetricsRegistry::global().counter(
      "ml_flat_predict_calls_total");
};

FlatInstruments& flat_instruments() {
  static FlatInstruments instruments;
  return instruments;
}

}  // namespace

FlatTreeEnsemble FlatTreeEnsemble::from_forest(
    const std::vector<DecisionTreeClassifier>& trees) {
  FlatTreeEnsemble flat;
  flat.kind_ = Kind::kBinary;
  flat.output_ = Output::kAverage;
  flat.tree_count_ = trees.size();
  std::size_t total_nodes = 0;
  for (const DecisionTreeClassifier& tree : trees) {
    total_nodes += tree.nodes().size();
  }
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.right_.reserve(total_nodes);
  flat.value_.reserve(total_nodes);
  flat.roots_.reserve(trees.size());
  for (const DecisionTreeClassifier& tree : trees) {
    const std::int32_t base = static_cast<std::int32_t>(flat.feature_.size());
    flat.roots_.push_back(static_cast<std::uint32_t>(base));
    for (const TreeNode& node : tree.nodes()) {
      flat.feature_.push_back(node.feature);
      flat.threshold_.push_back(node.threshold);
      flat.left_.push_back(node.is_leaf() ? -1 : node.left + base);
      flat.right_.push_back(node.is_leaf() ? -1 : node.right + base);
      flat.value_.push_back(node.value);
    }
  }
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::from_boosted(
    const std::vector<std::vector<TreeNode>>& trees, double base_score) {
  FlatTreeEnsemble flat;
  flat.kind_ = Kind::kBinary;
  flat.output_ = Output::kSigmoidSum;
  flat.base_score_ = base_score;
  flat.tree_count_ = trees.size();
  std::size_t total_nodes = 0;
  for (const std::vector<TreeNode>& tree : trees) total_nodes += tree.size();
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.right_.reserve(total_nodes);
  flat.value_.reserve(total_nodes);
  flat.roots_.reserve(trees.size());
  for (const std::vector<TreeNode>& tree : trees) {
    const std::int32_t base = static_cast<std::int32_t>(flat.feature_.size());
    flat.roots_.push_back(static_cast<std::uint32_t>(base));
    for (const TreeNode& node : tree) {
      flat.feature_.push_back(node.feature);
      flat.threshold_.push_back(node.threshold);
      flat.left_.push_back(node.is_leaf() ? -1 : node.left + base);
      flat.right_.push_back(node.is_leaf() ? -1 : node.right + base);
      flat.value_.push_back(node.value);
    }
  }
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::from_oblivious(
    const std::vector<ObliviousTree>& trees, double base_score) {
  FlatTreeEnsemble flat;
  flat.kind_ = Kind::kOblivious;
  flat.output_ = Output::kSigmoidSum;
  flat.base_score_ = base_score;
  flat.tree_count_ = trees.size();
  std::size_t total_levels = 0;
  std::size_t total_leaves = 0;
  for (const ObliviousTree& tree : trees) {
    total_levels += tree.features.size();
    total_leaves += tree.leaf_values.size();
  }
  flat.level_feature_.reserve(total_levels);
  flat.level_threshold_.reserve(total_levels);
  flat.leaf_value_.reserve(total_leaves);
  flat.level_offset_.reserve(trees.size());
  flat.level_depth_.reserve(trees.size());
  flat.leaf_offset_.reserve(trees.size());
  for (const ObliviousTree& tree : trees) {
    flat.level_offset_.push_back(
        static_cast<std::uint32_t>(flat.level_feature_.size()));
    flat.level_depth_.push_back(
        static_cast<std::uint32_t>(tree.features.size()));
    flat.leaf_offset_.push_back(
        static_cast<std::uint32_t>(flat.leaf_value_.size()));
    flat.level_feature_.insert(flat.level_feature_.end(), tree.features.begin(),
                               tree.features.end());
    flat.level_threshold_.insert(flat.level_threshold_.end(),
                                 tree.thresholds.begin(),
                                 tree.thresholds.end());
    flat.leaf_value_.insert(flat.leaf_value_.end(), tree.leaf_values.begin(),
                            tree.leaf_values.end());
  }
  return flat;
}

void FlatTreeEnsemble::predict_block(const Matrix& x, std::size_t begin,
                                     std::size_t end,
                                     std::span<double> out) const {
  // Hoist the SoA base pointers once: the walk loop then carries no
  // member-indirection through `this` and the compiler can keep them in
  // registers across the data-dependent node chases.
  const std::int32_t* const feature = feature_.data();
  const double* const threshold = threshold_.data();
  const std::int32_t* const left = left_.data();
  const std::int32_t* const right = right_.data();
  const double* const value = value_.data();
  const std::uint32_t* const roots = roots_.data();
  double accum[kRowBlock];
  for (std::size_t block = begin; block < end; block += kRowBlock) {
    const std::size_t rows = std::min(kRowBlock, end - block);
    const double init = output_ == Output::kSigmoidSum ? base_score_ : 0.0;
    for (std::size_t i = 0; i < rows; ++i) accum[i] = init;
    if (kind_ == Kind::kBinary) {
      // Row-outer / tree-inner inside the block: the row's feature span
      // stays in L1 across the whole ensemble while the contiguous SoA node
      // pool streams through in tree order; accumulation is per row in
      // legacy tree order, so sums are bit-identical to the node walk.
      for (std::size_t i = 0; i < rows; ++i) {
        const double* row = x.row(block + i).data();
        double sum = accum[i];
        for (std::size_t t = 0; t < tree_count_; ++t) {
          std::size_t node = roots[t];
          std::int32_t f = feature[node];
          while (f >= 0) {
            node = static_cast<std::size_t>(
                row[static_cast<std::size_t>(f)] <= threshold[node]
                    ? left[node]
                    : right[node]);
            f = feature[node];
          }
          sum += value[node];
        }
        accum[i] = sum;
      }
    } else {
      for (std::size_t t = 0; t < tree_count_; ++t) {
        const std::size_t levels = level_depth_[t];
        const std::int32_t* features = level_feature_.data() + level_offset_[t];
        const double* thresholds = level_threshold_.data() + level_offset_[t];
        const double* leaves = leaf_value_.data() + leaf_offset_[t];
        for (std::size_t i = 0; i < rows; ++i) {
          const double* row = x.row(block + i).data();
          std::uint32_t leaf = 0;
          for (std::size_t level = 0; level < levels; ++level) {
            const std::uint32_t bit =
                row[static_cast<std::size_t>(features[level])] >
                        thresholds[level]
                    ? 1U
                    : 0U;
            leaf = (leaf << 1) | bit;
          }
          accum[i] += leaves[leaf];
        }
      }
    }
    if (output_ == Output::kAverage) {
      const double n_trees = static_cast<double>(tree_count_);
      for (std::size_t i = 0; i < rows; ++i) {
        out[block + i] = accum[i] / n_trees;
      }
    } else {
      for (std::size_t i = 0; i < rows; ++i) {
        out[block + i] = gbdt::sigmoid(accum[i]);
      }
    }
  }
}

void FlatTreeEnsemble::predict_into(const Matrix& x,
                                    std::span<double> out) const {
  if (empty()) throw StateError("FlatTreeEnsemble::predict before compile");
  if (out.size() != x.rows()) {
    throw InvalidArgument("FlatTreeEnsemble::predict_into buffer size " +
                          std::to_string(out.size()) + " != rows " +
                          std::to_string(x.rows()));
  }
  obs::ScopedSpan span("ml.flat_predict");
  FlatInstruments& instruments = flat_instruments();
  instruments.calls.inc();
  instruments.rows.inc(x.rows());
  common::parallel_for_chunks(x.rows(),
                              [&](std::size_t begin, std::size_t end) {
                                predict_block(x, begin, end, out);
                              });
}

std::vector<double> FlatTreeEnsemble::predict_proba(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  predict_into(x, out);
  return out;
}

}  // namespace phishinghook::ml
