#include "ml/flat_tree.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <string>
#include <utility>

#include "common/errors.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "ml/catboost.hpp"
#include "ml/gbdt_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phishinghook::ml {

namespace {

struct FlatInstruments {
  obs::Counter rows = obs::MetricsRegistry::global().counter(
      "ml_flat_predict_rows_total");
  obs::Counter calls = obs::MetricsRegistry::global().counter(
      "ml_flat_predict_calls_total");
};

FlatInstruments& flat_instruments() {
  static FlatInstruments instruments;
  return instruments;
}

/// Bits [lo, hi) set; hi <= 64.
std::uint64_t range_mask(std::uint32_t lo, std::uint32_t hi) {
  const std::uint64_t upto_hi =
      hi >= 64 ? ~0ULL : ((1ULL << hi) - 1);
  const std::uint64_t upto_lo = (1ULL << lo) - 1;
  return upto_hi ^ upto_lo;
}

/// Leaves of the subtree rooted at `node`, capped at 65 (eligibility only
/// needs "more than 64"), plus the tree's maximum depth in edges.
struct TreeShape {
  std::size_t leaves = 0;
  std::uint32_t depth = 0;
};

TreeShape tree_shape(std::span<const TreeNode> tree) {
  TreeShape shape;
  // Explicit stack: boosted trees are shallow but the layout must not
  // assume it.
  std::vector<std::pair<std::int32_t, std::uint32_t>> stack;
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    shape.depth = std::max(shape.depth, depth);
    const TreeNode& n = tree[static_cast<std::size_t>(node)];
    if (n.is_leaf()) {
      ++shape.leaves;
      continue;
    }
    stack.emplace_back(n.left, depth + 1);
    stack.emplace_back(n.right, depth + 1);
  }
  return shape;
}

}  // namespace

// Per-chunk scratch: the block's feature values transposed feature-major
// so the per-test vector loops read contiguous lanes.
struct FlatTreeEnsemble::Scratch {
  std::vector<double> feature_major;  ///< [feature][block_row]
};

// --- compilation -------------------------------------------------------------

void FlatTreeEnsemble::build_cut_tables(
    std::vector<std::pair<std::int32_t, double>> tests) {
  cut_offset_.assign(n_features_ + 1, 0);
  cut_len_.assign(n_features_, 0);
  cuts_.clear();
  if (n_features_ == 0) return;
  // Counting sort by feature, then sort + dedup each feature's thresholds.
  // Exact `==` dedup is sound: equal doubles (including -0.0 vs 0.0) decide
  // every `<=`/`>` test identically, so they share one rank.
  std::sort(tests.begin(), tests.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  cuts_.reserve(tests.size());
  std::size_t i = 0;
  for (std::int32_t f = 0; f < static_cast<std::int32_t>(n_features_); ++f) {
    cut_offset_[static_cast<std::size_t>(f)] =
        static_cast<std::uint32_t>(cuts_.size());
    while (i < tests.size() && tests[i].first == f) {
      if (cuts_.size() ==
              cut_offset_[static_cast<std::size_t>(f)] ||
          cuts_.back() != tests[i].second) {
        cuts_.push_back(tests[i].second);
      }
      ++i;
    }
    cut_len_[static_cast<std::size_t>(f)] = static_cast<std::uint32_t>(
        cuts_.size() - cut_offset_[static_cast<std::size_t>(f)]);
  }
  cut_offset_[n_features_] = static_cast<std::uint32_t>(cuts_.size());
  active_features_.clear();
  for (std::size_t f = 0; f < n_features_; ++f) {
    if (cut_len_[f] > 0) active_features_.push_back(static_cast<std::uint32_t>(f));
  }
}

std::uint32_t FlatTreeEnsemble::rank_of(std::int32_t feature,
                                        double threshold) const {
  const double* begin = cuts_.data() + cut_offset_[static_cast<std::size_t>(feature)];
  const double* end = begin + cut_len_[static_cast<std::size_t>(feature)];
  return static_cast<std::uint32_t>(std::lower_bound(begin, end, threshold) -
                                    begin);
}

double FlatTreeEnsemble::intern_threshold(std::int32_t feature,
                                          double threshold) const {
  return cuts_[cut_offset_[static_cast<std::size_t>(feature)] +
               rank_of(feature, threshold)];
}

void FlatTreeEnsemble::compile_binary(
    const std::vector<std::span<const TreeNode>>& trees) {
  tree_count_ = trees.size();
  node_count_ = 0;
  std::int32_t max_feature = -1;
  std::vector<std::pair<std::int32_t, double>> tests;
  for (std::span<const TreeNode> tree : trees) {
    node_count_ += tree.size();
    for (const TreeNode& node : tree) {
      if (node.is_leaf()) continue;
      max_feature = std::max(max_feature, node.feature);
      tests.emplace_back(node.feature, node.threshold);
    }
  }
  n_features_ = static_cast<std::size_t>(max_feature + 1);
  build_cut_tables(std::move(tests));

  trees_.clear();
  trees_.reserve(tree_count_);
  walk_nodes_.clear();
  walk_node_value_.clear();
  bv_tests_.clear();
  bv_leaf_value_.clear();
  eligible_trees_ = 0;

  for (std::span<const TreeNode> tree : trees) {
    const TreeShape shape = tree_shape(tree);
    TreeRef ref;
    ref.depth = shape.depth;

    // Walk layout (always built — the kWalk traversal and oversized trees
    // both use it): DFS re-layout with sibling children adjacent, leaves
    // self-looping with an always-false test so the chase runs a fixed
    // `depth` steps branch-free.
    ref.walk_root = static_cast<std::uint32_t>(walk_nodes_.size());
    walk_nodes_.emplace_back();
    walk_node_value_.push_back(0.0);
    // (source node, destination slot) worklist.
    std::vector<std::pair<std::int32_t, std::uint32_t>> work;
    work.emplace_back(0, ref.walk_root);
    while (!work.empty()) {
      const auto [src, dst] = work.back();
      work.pop_back();
      const TreeNode& node = tree[static_cast<std::size_t>(src)];
      if (node.is_leaf()) {
        WalkNode& out = walk_nodes_[dst];
        out.threshold = std::numeric_limits<double>::infinity();
        out.feature = 0;  // read, but finite x is never > +inf
        out.left = static_cast<std::int32_t>(dst);  // self-loop
        walk_node_value_[dst] = node.value;
        continue;
      }
      const std::uint32_t children =
          static_cast<std::uint32_t>(walk_nodes_.size());
      walk_nodes_.emplace_back();
      walk_nodes_.emplace_back();  // may reallocate: index `dst` afterwards
      walk_node_value_.push_back(0.0);
      walk_node_value_.push_back(0.0);
      WalkNode& out = walk_nodes_[dst];
      out.threshold = intern_threshold(node.feature, node.threshold);
      out.feature = node.feature;
      out.left = static_cast<std::int32_t>(children);
      work.emplace_back(node.left, children);
      work.emplace_back(node.right, children + 1);
    }

    // QuickScorer layout for trees whose leaves fit one machine word:
    // leaves numbered left-to-right by an in-order DFS; each internal node
    // contributes a test whose keep-mask zeros its left subtree (the
    // leaves that become unreachable when `x <= t` fails).
    ref.bitvector_eligible = shape.leaves <= 64;
    if (ref.bitvector_eligible) {
      ref.test_begin = static_cast<std::uint32_t>(bv_tests_.size());
      ref.leaf_begin = static_cast<std::uint32_t>(bv_leaf_value_.size());
      std::uint32_t next_leaf = 0;
      // Recursive lambda returning the subtree's [lo, hi) leaf range;
      // depth is bounded by 63 for any 64-leaf tree.
      auto enumerate = [&](auto&& self, std::int32_t node)
          -> std::pair<std::uint32_t, std::uint32_t> {
        const TreeNode& n = tree[static_cast<std::size_t>(node)];
        if (n.is_leaf()) {
          bv_leaf_value_.push_back(n.value);
          const std::uint32_t id = next_leaf++;
          return {id, id + 1};
        }
        const auto left = self(self, n.left);
        const auto right = self(self, n.right);
        BvTest test;
        test.feature = n.feature;
        test.threshold = intern_threshold(n.feature, n.threshold);
        test.keep_mask = ~range_mask(left.first, left.second);
        bv_tests_.push_back(test);
        return {left.first, right.second};
      };
      enumerate(enumerate, 0);
      ref.test_end = static_cast<std::uint32_t>(bv_tests_.size());
      ref.init_mask = range_mask(0, next_leaf);
      ++eligible_trees_;
    }
    trees_.push_back(ref);
  }
}

FlatTreeEnsemble FlatTreeEnsemble::from_forest(
    const std::vector<DecisionTreeClassifier>& trees) {
  FlatTreeEnsemble flat;
  flat.kind_ = Kind::kBinary;
  flat.output_ = Output::kAverage;
  std::vector<std::span<const TreeNode>> spans;
  spans.reserve(trees.size());
  for (const DecisionTreeClassifier& tree : trees) spans.emplace_back(tree.nodes());
  flat.compile_binary(spans);
  return flat;
}

FlatTreeEnsemble FlatTreeEnsemble::from_boosted(
    const std::vector<std::vector<TreeNode>>& trees, double base_score) {
  FlatTreeEnsemble flat;
  flat.kind_ = Kind::kBinary;
  flat.output_ = Output::kSigmoidSum;
  flat.base_score_ = base_score;
  std::vector<std::span<const TreeNode>> spans;
  spans.reserve(trees.size());
  for (const std::vector<TreeNode>& tree : trees) spans.emplace_back(tree);
  flat.compile_binary(spans);
  return flat;
}

void FlatTreeEnsemble::compile_oblivious(
    const std::vector<ObliviousTree>& trees) {
  tree_count_ = trees.size();
  std::size_t total_levels = 0;
  std::size_t total_leaves = 0;
  std::int32_t max_feature = -1;
  std::vector<std::pair<std::int32_t, double>> tests;
  for (const ObliviousTree& tree : trees) {
    total_levels += tree.features.size();
    total_leaves += tree.leaf_values.size();
    for (std::size_t l = 0; l < tree.features.size(); ++l) {
      max_feature = std::max(max_feature, tree.features[l]);
      tests.emplace_back(tree.features[l], tree.thresholds[l]);
    }
  }
  node_count_ = total_levels + total_leaves;
  n_features_ = static_cast<std::size_t>(max_feature + 1);
  build_cut_tables(std::move(tests));

  level_feature_.clear();
  level_threshold_.clear();
  leaf_value_.clear();
  level_offset_.clear();
  level_depth_.clear();
  leaf_offset_.clear();
  level_feature_.reserve(total_levels);
  level_threshold_.reserve(total_levels);
  leaf_value_.reserve(total_leaves);
  level_offset_.reserve(trees.size());
  level_depth_.reserve(trees.size());
  leaf_offset_.reserve(trees.size());
  for (const ObliviousTree& tree : trees) {
    level_offset_.push_back(static_cast<std::uint32_t>(level_feature_.size()));
    level_depth_.push_back(static_cast<std::uint32_t>(tree.features.size()));
    leaf_offset_.push_back(static_cast<std::uint32_t>(leaf_value_.size()));
    for (std::size_t l = 0; l < tree.features.size(); ++l) {
      level_feature_.push_back(tree.features[l]);
      level_threshold_.push_back(
          intern_threshold(tree.features[l], tree.thresholds[l]));
    }
    leaf_value_.insert(leaf_value_.end(), tree.leaf_values.begin(),
                       tree.leaf_values.end());
  }
}

FlatTreeEnsemble FlatTreeEnsemble::from_oblivious(
    const std::vector<ObliviousTree>& trees, double base_score) {
  FlatTreeEnsemble flat;
  flat.kind_ = Kind::kOblivious;
  flat.output_ = Output::kSigmoidSum;
  flat.base_score_ = base_score;
  flat.compile_oblivious(trees);
  return flat;
}

// --- configuration -----------------------------------------------------------

std::size_t FlatTreeEnsemble::bitvector_tree_count() const {
  // kAuto resolves to the walk for both kinds — the bench_infer sweep
  // shows the interleaved walk beating the QuickScorer masks at the
  // shipped tree shapes and the row-outer oblivious walk beating the
  // transposed level-outer mask path (the transpose costs more than
  // cross-row SIMD saves at depth ≤ 6).
  if (traversal_ != Traversal::kBitvector) return 0;
  return kind_ == Kind::kOblivious ? tree_count_ : eligible_trees_;
}

const char* FlatTreeEnsemble::traversal_label() const {
  const std::size_t bitvector = bitvector_tree_count();
  if (bitvector == 0) return "flat";
  return bitvector == tree_count_ ? "bitvector" : "mixed";
}

void FlatTreeEnsemble::set_row_block(std::size_t rows) {
  row_block_ = std::clamp<std::size_t>(rows, 4, kMaxRowBlock);
}

// --- evaluation --------------------------------------------------------------

void FlatTreeEnsemble::transpose_block(const Matrix& x, std::size_t row0,
                                       std::size_t rows,
                                       Scratch& scratch) const {
  const double* data = x.data().data() + row0 * x.cols();
  const std::size_t cols = x.cols();
  const std::size_t block = row_block_;
  double* fm = scratch.feature_major.data();
  // Feature-outer: each pane is written contiguously (strided reads
  // overlap in the load pipeline; strided writes would allocate a cache
  // line per store). Only features some test consults get a pane.
  for (const std::uint32_t f : active_features_) {
    double* pane = fm + static_cast<std::size_t>(f) * block;
    const double* src = data + f;
    for (std::size_t i = 0; i < rows; ++i) {
      pane[i] = src[i * cols];
    }
  }
}

void FlatTreeEnsemble::predict_block(const Matrix& x, std::size_t begin,
                                     std::size_t end, std::span<double> out,
                                     Scratch& scratch) const {
  const std::size_t block_size = row_block_;
  const bool use_bitvector =
      traversal_ == Traversal::kBitvector &&
      (kind_ == Kind::kOblivious ? tree_count_ > 0 : eligible_trees_ > 0);
  const bool oblivious_walk = kind_ == Kind::kOblivious && !use_bitvector;
  if (use_bitvector) {
    scratch.feature_major.resize(n_features_ * block_size);
  }

  double accum[kMaxRowBlock];
  std::uint64_t mask[kMaxRowBlock];
  std::uint64_t leaf[kMaxRowBlock];
  const std::size_t cols = x.cols();
  const double* rows_data = x.data().data();

  for (std::size_t block = begin; block < end; block += block_size) {
    const std::size_t rows = std::min(block_size, end - block);
    const double init = output_ == Output::kSigmoidSum ? base_score_ : 0.0;
    for (std::size_t i = 0; i < rows; ++i) accum[i] = init;
    if (use_bitvector && n_features_ > 0) {
      transpose_block(x, block, rows, scratch);
    }

    if (kind_ == Kind::kBinary) {
      const double* fm = scratch.feature_major.data();
      const WalkNode* nodes = walk_nodes_.data();
      const double* walk_values = walk_node_value_.data();
      // Tree-outer: one tree's tests/nodes stay hot across the whole row
      // block; per-row accumulation still happens in legacy tree order.
      for (const TreeRef& tree : trees_) {
        if (tree.bitvector_eligible && use_bitvector) {
          const std::uint64_t init_mask = tree.init_mask;
          PHISHINGHOOK_SIMD
          for (std::size_t i = 0; i < rows; ++i) mask[i] = init_mask;
          for (std::uint32_t t = tree.test_begin; t < tree.test_end; ++t) {
            const BvTest test = bv_tests_[t];
            const double* lane =
                fm + static_cast<std::size_t>(test.feature) * block_size;
            const std::uint64_t keep = test.keep_mask;
            const double threshold = test.threshold;
            // keep | ~0 when the test passes, keep | 0 when it fails:
            // pure arithmetic select, no branch (the double compare maps
            // straight onto an all-ones/all-zeros SIMD lane mask).
            PHISHINGHOOK_SIMD
            for (std::size_t i = 0; i < rows; ++i) {
              mask[i] &= keep | (0ULL - static_cast<std::uint64_t>(
                                            lane[i] <= threshold));
            }
          }
          const double* leaves = bv_leaf_value_.data() + tree.leaf_begin;
          for (std::size_t i = 0; i < rows; ++i) {
            accum[i] += leaves[std::countr_zero(mask[i])];
          }
        } else {
          // Fixed-depth branch-free chase, four rows interleaved so the
          // dependent node loads overlap in the memory pipeline. Feature
          // values read row-major straight from x.
          const std::uint32_t root = tree.walk_root;
          const std::uint32_t depth = tree.depth;
          std::size_t i = 0;
          for (; i + 4 <= rows; i += 4) {
            const double* r0 = rows_data + (block + i + 0) * cols;
            const double* r1 = rows_data + (block + i + 1) * cols;
            const double* r2 = rows_data + (block + i + 2) * cols;
            const double* r3 = rows_data + (block + i + 3) * cols;
            std::uint32_t n0 = root, n1 = root, n2 = root, n3 = root;
            for (std::uint32_t d = 0; d < depth; ++d) {
              const WalkNode a0 = nodes[n0];
              const WalkNode a1 = nodes[n1];
              const WalkNode a2 = nodes[n2];
              const WalkNode a3 = nodes[n3];
              n0 = static_cast<std::uint32_t>(a0.left) +
                   (r0[a0.feature] > a0.threshold);
              n1 = static_cast<std::uint32_t>(a1.left) +
                   (r1[a1.feature] > a1.threshold);
              n2 = static_cast<std::uint32_t>(a2.left) +
                   (r2[a2.feature] > a2.threshold);
              n3 = static_cast<std::uint32_t>(a3.left) +
                   (r3[a3.feature] > a3.threshold);
            }
            accum[i + 0] += walk_values[n0];
            accum[i + 1] += walk_values[n1];
            accum[i + 2] += walk_values[n2];
            accum[i + 3] += walk_values[n3];
          }
          for (; i < rows; ++i) {
            const double* r = rows_data + (block + i) * cols;
            std::uint32_t n = root;
            for (std::uint32_t d = 0; d < depth; ++d) {
              const WalkNode a = nodes[n];
              n = static_cast<std::uint32_t>(a.left) +
                  (r[a.feature] > a.threshold);
            }
            accum[i] += walk_values[n];
          }
        }
      }
    } else if (!oblivious_walk) {
      // CatBoost mask arithmetic, level-outer / row-inner: every level is
      // one vectorizable compare-shift-or over the block.
      const double* fm = scratch.feature_major.data();
      for (std::size_t t = 0; t < tree_count_; ++t) {
        const std::size_t levels = level_depth_[t];
        const std::size_t off = level_offset_[t];
        PHISHINGHOOK_SIMD
        for (std::size_t i = 0; i < rows; ++i) leaf[i] = 0;
        for (std::size_t level = 0; level < levels; ++level) {
          const double* lane =
              fm + static_cast<std::size_t>(level_feature_[off + level]) *
                       block_size;
          const double threshold = level_threshold_[off + level];
          PHISHINGHOOK_SIMD
          for (std::size_t i = 0; i < rows; ++i) {
            leaf[i] = (leaf[i] << 1) |
                      static_cast<std::uint64_t>(lane[i] > threshold);
          }
        }
        const double* leaves = leaf_value_.data() + leaf_offset_[t];
        for (std::size_t i = 0; i < rows; ++i) accum[i] += leaves[leaf[i]];
      }
    } else {
      // Row-outer oblivious walk (production kAuto): per row, each level
      // is a branch-free shift/or — no transpose, row data stays in L1
      // across trees. Four rows interleave per tree so the four index
      // chains run independently while sharing each level's single
      // (feature, threshold) load.
      for (std::size_t t = 0; t < tree_count_; ++t) {
        const std::size_t levels = level_depth_[t];
        const std::int32_t* features = level_feature_.data() + level_offset_[t];
        const double* thresholds = level_threshold_.data() + level_offset_[t];
        const double* leaves = leaf_value_.data() + leaf_offset_[t];
        std::size_t i = 0;
        for (; i + 4 <= rows; i += 4) {
          const double* r0 = rows_data + (block + i + 0) * cols;
          const double* r1 = rows_data + (block + i + 1) * cols;
          const double* r2 = rows_data + (block + i + 2) * cols;
          const double* r3 = rows_data + (block + i + 3) * cols;
          std::uint32_t i0 = 0, i1 = 0, i2 = 0, i3 = 0;
          for (std::size_t level = 0; level < levels; ++level) {
            const std::size_t f = static_cast<std::size_t>(features[level]);
            const double threshold = thresholds[level];
            i0 = (i0 << 1) | static_cast<std::uint32_t>(r0[f] > threshold);
            i1 = (i1 << 1) | static_cast<std::uint32_t>(r1[f] > threshold);
            i2 = (i2 << 1) | static_cast<std::uint32_t>(r2[f] > threshold);
            i3 = (i3 << 1) | static_cast<std::uint32_t>(r3[f] > threshold);
          }
          accum[i + 0] += leaves[i0];
          accum[i + 1] += leaves[i1];
          accum[i + 2] += leaves[i2];
          accum[i + 3] += leaves[i3];
        }
        for (; i < rows; ++i) {
          const double* row = rows_data + (block + i) * cols;
          std::uint32_t idx = 0;
          for (std::size_t level = 0; level < levels; ++level) {
            idx = (idx << 1) |
                  static_cast<std::uint32_t>(
                      row[static_cast<std::size_t>(features[level])] >
                      thresholds[level]);
          }
          accum[i] += leaves[idx];
        }
      }
    }

    if (output_ == Output::kAverage) {
      const double n_trees = static_cast<double>(tree_count_);
      for (std::size_t i = 0; i < rows; ++i) {
        out[block + i] = accum[i] / n_trees;
      }
    } else {
      for (std::size_t i = 0; i < rows; ++i) {
        out[block + i] = gbdt::sigmoid(accum[i]);
      }
    }
  }
}

void FlatTreeEnsemble::predict_into(const Matrix& x,
                                    std::span<double> out) const {
  if (empty()) throw StateError("FlatTreeEnsemble::predict before compile");
  if (out.size() != x.rows()) {
    throw InvalidArgument("FlatTreeEnsemble::predict_into buffer size " +
                          std::to_string(out.size()) + " != rows " +
                          std::to_string(x.rows()));
  }
  if (x.rows() > 0 && x.cols() < n_features_) {
    throw InvalidArgument("FlatTreeEnsemble::predict_into needs " +
                          std::to_string(n_features_) + " features, matrix has " +
                          std::to_string(x.cols()));
  }
  obs::ScopedSpan span("ml.flat_predict");
  FlatInstruments& instruments = flat_instruments();
  instruments.calls.inc();
  instruments.rows.inc(x.rows());
  common::parallel_for_chunks(x.rows(),
                              [&](std::size_t begin, std::size_t end) {
                                Scratch scratch;
                                predict_block(x, begin, end, out, scratch);
                              });
}

std::vector<double> FlatTreeEnsemble::predict_proba(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  predict_into(x, out);
  return out;
}

}  // namespace phishinghook::ml
