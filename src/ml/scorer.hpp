// Model-agnostic scoring interface: every detector family — the tabular
// HSCs behind a histogram vocabulary, the vision models behind an image
// encoder, the sequence/language models behind a tokenizer — scores a
// batch of raw deployed bytecodes through the same contract:
//
//   score_batch(view, out)   // out[i] = P(phishing) + which stage scored it
//
// Feature extraction is the implementer's job (the per-model hook): a
// Scorer owns whatever pipeline turns bytecode into model input, exactly
// as the paper's MEM demands (fit on the training split only). This is
// what lets the serving path — ScoringEngine's batch loop, the artifact
// save/load path, RpcFrontend — stay ignorant of model families, and what
// makes composite scorers (the cost-aware cascade, A/B splits, shadow
// scoring) expressible as just another Scorer.
//
// Threading contract: score_batch must be safe to call concurrently from
// multiple threads on an already-fitted scorer (all shipped families are
// read-only at inference time). Determinism contract: row i's outcome may
// depend only on view[i] — never on batch composition, timing, or thread
// count — so any batching policy upstream yields bit-identical results.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace phishinghook::evm {
class Bytecode;
}
namespace phishinghook::obs {
class MetricsRegistry;
}

namespace phishinghook::ml {

class FlatTreeEnsemble;  // flat_tree.hpp

/// Borrowed, non-owning view over a batch of deployed bytecodes (the
/// pointer array idiom every adapter already consumes). The codes must
/// outlive the score_batch call; nothing is copied.
class BytecodeBatchView {
 public:
  BytecodeBatchView() = default;
  BytecodeBatchView(const evm::Bytecode* const* codes, std::size_t count)
      : codes_(codes), count_(count) {}
  /// View over an existing pointer batch (no copy).
  explicit BytecodeBatchView(const std::vector<const evm::Bytecode*>& codes)
      : codes_(codes.data()), count_(codes.size()) {}

  const evm::Bytecode* const* data() const { return codes_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const evm::Bytecode& operator[](std::size_t i) const { return *codes_[i]; }

  /// Materializes the pointer vector the legacy predict_proba interfaces
  /// take (pointers only — the bytecodes themselves are not copied).
  std::vector<const evm::Bytecode*> to_vector() const {
    return std::vector<const evm::Bytecode*>(codes_, codes_ + count_);
  }

 private:
  const evm::Bytecode* const* codes_ = nullptr;
  std::size_t count_ = 0;
};

/// Per-row outcome of a Scorer invocation.
struct ScoredRow {
  double probability = 0.0;  ///< P(phishing)
  std::uint32_t stage = 0;   ///< cascade stage that produced the score
  /// A heavier stage was supposed to score this row but failed; the
  /// probability is the last healthy stage's output (stage says which).
  bool degraded = false;
};

/// The serving-path contract every detector family implements.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Scores `view` into `out` (same length, caller-allocated). Throws on
  /// total failure (e.g. the primary model itself is broken); partial
  /// heavy-stage failures in composite scorers degrade rows instead (see
  /// ScoredRow::degraded).
  virtual void score_batch(const BytecodeBatchView& view,
                           std::span<ScoredRow> out) = 0;

  virtual std::string name() const = 0;

  /// Version string surfaced next to scores ("which weights said this");
  /// defaults to "v1" until a scorer carries real lineage.
  virtual std::string version() const { return "v1"; }

  /// Number of internal stages (1 for every single-model scorer).
  virtual std::size_t stage_count() const { return 1; }

  /// Model name behind stage `index` (== name() for single-model scorers).
  virtual std::string stage_model(std::size_t index) const {
    (void)index;
    return name();
  }

  /// The compiled branch-free tree ensemble serving this scorer's hot
  /// path, when one exists (fitted/loaded HSC tree models); nullptr
  /// otherwise. ScoringEngine exports its compile stats as serve gauges.
  virtual const FlatTreeEnsemble* flat_ensemble() const { return nullptr; }

  /// Called once by the owner of a metrics registry (the scoring engine)
  /// so composite scorers can register their hot-path instruments
  /// (per-stage row counters, stage timing histograms). Default: no-op.
  virtual void bind_metrics(obs::MetricsRegistry& registry) { (void)registry; }

  /// Publishes pull-model state (rates, ratios) onto `registry`; wired as
  /// a pre-scrape hook next to the score cache's export. Default: no-op.
  virtual void export_metrics(obs::MetricsRegistry& registry) const {
    (void)registry;
  }

  /// Convenience: score and return just the probabilities.
  std::vector<double> score_probabilities(const BytecodeBatchView& view);
};

}  // namespace phishinghook::ml
