// Stratified k-fold cross-validation — the paper's evaluation protocol
// (10-fold x 3 runs for Table II; the folds preserve the 50/50 class
// balance of the dataset).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ml/classifier.hpp"

namespace phishinghook::ml {

struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Splits [0, labels.size()) into `k` stratified folds: each class's indices
/// are shuffled and dealt round-robin, so per-fold class proportions match
/// the dataset's. Throws InvalidArgument for k < 2 or k > sample count.
std::vector<Fold> stratified_kfold(const std::vector<int>& labels, int k,
                                   common::Rng& rng);

/// One stratified holdout split with `test_fraction` of each class held out.
Fold stratified_holdout(const std::vector<int>& labels, double test_fraction,
                        common::Rng& rng);

/// Builds a fresh classifier for each fold. Called concurrently from the
/// thread pool, so the factory must be thread-safe (stateless factories
/// capturing configs by value or const reference are).
using ModelFactory = std::function<std::unique_ptr<TabularClassifier>()>;

/// Fits one model per fold — folds run as independent parallel tasks — and
/// returns each fold's test accuracy, in fold order. Deterministic at every
/// thread count: folds share no mutable state and results land in
/// pre-assigned slots.
std::vector<double> cross_validate_accuracy(const ModelFactory& make,
                                            const Matrix& x,
                                            const std::vector<int>& y,
                                            const std::vector<Fold>& folds);

}  // namespace phishinghook::ml
