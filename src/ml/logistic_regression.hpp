// L2-regularized logistic regression (HSC category).
//
// Trained by full-batch gradient descent with Adam and feature
// standardization learned on the training set (raw opcode counts span
// several orders of magnitude; the linear model needs the scaling even
// though the paper feeds trees raw counts).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace phishinghook::ml {

struct LogisticRegressionConfig {
  double learning_rate = 0.05;
  double l2 = 1e-3;
  int epochs = 300;
  std::uint64_t seed = 11;
};

class LogisticRegressionClassifier final : public TabularClassifier {
 public:
  explicit LogisticRegressionClassifier(LogisticRegressionConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "Logistic Regression"; }

  void save(std::ostream& out) const override;
  static LogisticRegressionClassifier load_from(std::istream& in);

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  double margin(std::span<const double> row) const;

  LogisticRegressionConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_, stddev_;  // standardization learned in fit()
};

}  // namespace phishinghook::ml
