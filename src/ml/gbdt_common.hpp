// Shared machinery for the three gradient-boosted tree classifiers
// (XGBoost-, LightGBM- and CatBoost-style): logistic loss derivatives and
// quantile feature binning.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ml/matrix.hpp"

namespace phishinghook::ml::gbdt {

inline double sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

/// First/second derivatives of the logistic loss at raw score `score`.
struct GradHess {
  double grad = 0.0;
  double hess = 0.0;
};

inline GradHess logistic_grad_hess(double score, int label) {
  const double p = sigmoid(score);
  return {p - static_cast<double>(label), std::max(p * (1.0 - p), 1e-12)};
}

/// Quantile binning learned on the training matrix: per feature, at most
/// `max_bins` cut points; transform maps values to bin ids in [0, bins).
class FeatureBinner {
 public:
  void fit(const Matrix& x, int max_bins);

  /// Bin id of value `v` for feature `f`.
  std::uint8_t bin(std::size_t feature, double v) const;

  /// Bins for a whole matrix (row-major, same shape).
  std::vector<std::uint8_t> transform(const Matrix& x) const;

  int bins(std::size_t feature) const {
    return static_cast<int>(cuts_[feature].size()) + 1;
  }
  std::size_t features() const { return cuts_.size(); }

  /// Upper cut value of bin `b` (used to recover split thresholds).
  double cut(std::size_t feature, int b) const { return cuts_[feature][static_cast<std::size_t>(b)]; }

 private:
  std::vector<std::vector<double>> cuts_;  // ascending cut points per feature
};

}  // namespace phishinghook::ml::gbdt
