#include "ml/catboost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace phishinghook::ml {

namespace {

/// Best (bin, score) one feature offers for one oblivious level.
struct LevelSplit {
  int feature = -1;
  int bin = -1;
  double score = -std::numeric_limits<double>::infinity();
};

}  // namespace

CatBoostClassifier::CatBoostClassifier(CatBoostConfig config)
    : config_(config) {}

void CatBoostClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw InvalidArgument("CatBoost::fit size mismatch");
  if (x.rows() == 0) throw InvalidArgument("CatBoost::fit on empty data");
  trees_.clear();
  common::Rng rng(config_.seed);

  gbdt::FeatureBinner binner;
  binner.fit(x, config_.max_bins);
  const std::vector<std::uint8_t> binned = binner.transform(x);
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  double pos = 0.0;
  for (int label : y) pos += label != 0 ? 1.0 : 0.0;
  const double rate =
      std::clamp(pos / static_cast<double>(n), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(rate / (1.0 - rate));

  std::vector<double> scores(n, base_score_);
  std::vector<double> grad(n), hess(n), bag(n, 1.0);
  std::vector<std::uint32_t> leaf_of(n);

  for (int round = 0; round < config_.n_rounds; ++round) {
    // Bayesian bootstrap (CatBoost's bagging temperature): weight ~
    // (-log U)^T.
    for (std::size_t i = 0; i < n; ++i) {
      if (config_.bagging_temperature > 0.0) {
        double u = rng.next_double();
        while (u <= 0.0) u = rng.next_double();
        bag[i] = std::pow(-std::log(u), config_.bagging_temperature);
      }
      const auto gh = gbdt::logistic_grad_hess(scores[i], y[i]);
      grad[i] = gh.grad * bag[i];
      hess[i] = gh.hess * bag[i];
    }

    ObliviousTree tree;
    std::fill(leaf_of.begin(), leaf_of.end(), 0u);
    std::size_t leaf_count = 1;

    for (int level = 0; level < config_.depth; ++level) {
      // Choose the single (feature, bin) test maximizing the summed split
      // score over all current leaves.
      //
      // Per-leaf totals (serial; shared read-only by the feature scans).
      std::vector<double> leaf_g(leaf_count, 0.0), leaf_h(leaf_count, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        leaf_g[leaf_of[i]] += grad[i];
        leaf_h[leaf_of[i]] += hess[i];
      }

      // Parallel over features: each builds a private (leaf, bin) histogram
      // and reports its best bin; the index-ordered reduction below keeps
      // the serial scan's earliest-feature tie-breaking, so the chosen
      // split is thread-count-invariant.
      const std::vector<LevelSplit> candidates =
          common::parallel_map<LevelSplit>(d, [&](std::size_t f) {
            LevelSplit local;
            const int bins = binner.bins(f);
            if (bins < 2) return local;
            std::vector<double> hist_g(
                leaf_count * static_cast<std::size_t>(bins), 0.0);
            std::vector<double> hist_h(
                leaf_count * static_cast<std::size_t>(bins), 0.0);
            for (std::size_t i = 0; i < n; ++i) {
              const std::size_t slot =
                  leaf_of[i] * static_cast<std::size_t>(bins) +
                  binned[i * d + f];
              hist_g[slot] += grad[i];
              hist_h[slot] += hess[i];
            }
            // Candidate bins: evaluate cumulative split at each boundary.
            for (int b = 0; b + 1 < bins; ++b) {
              double score = 0.0;
              bool valid = false;
              for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
                double gl = 0.0, hl = 0.0;
                for (int bb = 0; bb <= b; ++bb) {
                  const std::size_t slot =
                      leaf * static_cast<std::size_t>(bins) +
                      static_cast<std::size_t>(bb);
                  gl += hist_g[slot];
                  hl += hist_h[slot];
                }
                const double gr = leaf_g[leaf] - gl;
                const double hr = leaf_h[leaf] - hl;
                score += gl * gl / (hl + config_.lambda) +
                         gr * gr / (hr + config_.lambda);
                if (hl > 0.0 && hr > 0.0) valid = true;
              }
              if (valid && score > local.score) {
                local.score = score;
                local.feature = static_cast<int>(f);
                local.bin = b;
              }
            }
            return local;
          });

      int best_feature = -1;
      int best_bin = -1;
      double best_score = -std::numeric_limits<double>::infinity();
      for (const LevelSplit& candidate : candidates) {
        if (candidate.feature >= 0 && candidate.score > best_score) {
          best_score = candidate.score;
          best_feature = candidate.feature;
          best_bin = candidate.bin;
        }
      }

      if (best_feature < 0) break;
      const double threshold = std::nextafter(
          binner.cut(static_cast<std::size_t>(best_feature), best_bin),
          -std::numeric_limits<double>::infinity());
      tree.features.push_back(best_feature);
      tree.thresholds.push_back(threshold);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t bit =
            binned[i * d + static_cast<std::size_t>(best_feature)] >
                    static_cast<std::uint8_t>(best_bin)
                ? 1u
                : 0u;
        leaf_of[i] = (leaf_of[i] << 1) | bit;
      }
      leaf_count <<= 1;
    }

    // Leaf values.
    tree.leaf_values.assign(leaf_count, 0.0);
    std::vector<double> leaf_g(leaf_count, 0.0), leaf_h(leaf_count, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      leaf_g[leaf_of[i]] += grad[i];
      leaf_h[leaf_of[i]] += hess[i];
    }
    for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
      tree.leaf_values[leaf] =
          -config_.learning_rate * leaf_g[leaf] / (leaf_h[leaf] + config_.lambda);
    }
    for (std::size_t i = 0; i < n; ++i) {
      scores[i] += tree.leaf_values[leaf_of[i]];
    }
    trees_.push_back(std::move(tree));
  }
  flat_ = FlatTreeEnsemble::from_oblivious(trees_, base_score_);
}

double CatBoostClassifier::raw_score(std::span<const double> row) const {
  if (trees_.empty()) throw StateError("CatBoost::predict before fit");
  double score = base_score_;
  for (const ObliviousTree& tree : trees_) {
    std::uint32_t leaf = 0;
    for (std::size_t level = 0; level < tree.features.size(); ++level) {
      const std::uint32_t bit =
          row[static_cast<std::size_t>(tree.features[level])] >
                  tree.thresholds[level]
              ? 1u
              : 0u;
      leaf = (leaf << 1) | bit;
    }
    score += tree.leaf_values[leaf];
  }
  return score;
}

std::vector<double> CatBoostClassifier::predict_proba(const Matrix& x) const {
  if (trees_.empty()) throw StateError("CatBoost::predict before fit");
  return flat_.predict_proba(x);
}

std::vector<double> CatBoostClassifier::predict_proba_nodewalk(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  common::parallel_for_chunks(
      x.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          out[r] = gbdt::sigmoid(raw_score(x.row(r)));
        }
      });
  return out;
}

}  // namespace phishinghook::ml
