// LightGBM-style gradient boosting (HSC category).
//
// The two ingredients that distinguish LightGBM from classic GBDT are
// reproduced: histogram-based split finding (features quantized to <= 63
// bins once, split scans run over bin statistics) and best-first *leaf-wise*
// tree growth bounded by `num_leaves` rather than depth.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flat_tree.hpp"
#include "ml/gbdt_common.hpp"

namespace phishinghook::ml {

struct LightGbmConfig {
  int n_rounds = 150;
  int num_leaves = 31;
  int max_bins = 63;
  double learning_rate = 0.1;
  double lambda = 1.0;
  double min_child_weight = 1.0;
  double min_gain = 1e-6;
  std::uint64_t seed = 19;
};

class LightGbmClassifier final : public TabularClassifier {
 public:
  explicit LightGbmClassifier(LightGbmConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;

  /// Batched inference on the flattened SoA ensemble (compiled at fit/load
  /// time); bit-identical to predict_proba_nodewalk.
  std::vector<double> predict_proba(const Matrix& x) const override;

  /// The original per-row node-walk path (equivalence oracle).
  std::vector<double> predict_proba_nodewalk(const Matrix& x) const;

  const FlatTreeEnsemble* flat_ensemble() const override {
    return flat_.empty() ? nullptr : &flat_;
  }

  std::string name() const override { return "LightGBM"; }

  void save(std::ostream& out) const override;
  static LightGbmClassifier load_from(std::istream& in);

  double raw_score(std::span<const double> row) const;
  const std::vector<std::vector<TreeNode>>& trees() const { return trees_; }
  double base_score() const { return base_score_; }

 private:
  LightGbmConfig config_;
  std::vector<std::vector<TreeNode>> trees_;
  double base_score_ = 0.0;
  FlatTreeEnsemble flat_;  ///< rebuilt after fit() and load_from()
};

}  // namespace phishinghook::ml
