#include "ml/metrics.hpp"

#include "common/errors.hpp"

namespace phishinghook::ml {

ConfusionMatrix confusion(const std::vector<int>& truth,
                          const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    throw InvalidArgument("confusion(): size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool actual = truth[i] != 0;
    const bool guess = predicted[i] != 0;
    if (actual && guess) ++cm.tp;
    else if (!actual && guess) ++cm.fp;
    else if (!actual && !guess) ++cm.tn;
    else ++cm.fn;
  }
  return cm;
}

Metrics compute_metrics(const ConfusionMatrix& cm) {
  Metrics m;
  const double total = static_cast<double>(cm.total());
  if (total > 0) {
    m.accuracy = static_cast<double>(cm.tp + cm.tn) / total;
  }
  if (cm.tp + cm.fp > 0) {
    m.precision = static_cast<double>(cm.tp) / static_cast<double>(cm.tp + cm.fp);
  }
  if (cm.tp + cm.fn > 0) {
    m.recall = static_cast<double>(cm.tp) / static_cast<double>(cm.tp + cm.fn);
  }
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

Metrics compute_metrics(const std::vector<int>& truth,
                        const std::vector<int>& predicted) {
  return compute_metrics(confusion(truth, predicted));
}

Metrics mean_metrics(const std::vector<Metrics>& all) {
  Metrics m;
  if (all.empty()) return m;
  for (const Metrics& one : all) {
    m.accuracy += one.accuracy;
    m.precision += one.precision;
    m.recall += one.recall;
    m.f1 += one.f1;
  }
  const double n = static_cast<double>(all.size());
  m.accuracy /= n;
  m.precision /= n;
  m.recall /= n;
  m.f1 /= n;
  return m;
}

std::vector<int> threshold_predictions(const std::vector<double>& probs,
                                       double threshold) {
  std::vector<int> out(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    out[i] = probs[i] >= threshold ? 1 : 0;
  }
  return out;
}

double area_under_time(const std::vector<double>& series) {
  if (series.empty()) return 0.0;
  if (series.size() == 1) return series.front();
  double area = 0.0;
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    area += 0.5 * (series[i] + series[i + 1]);
  }
  return area / static_cast<double>(series.size() - 1);
}

}  // namespace phishinghook::ml
