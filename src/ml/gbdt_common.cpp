#include "ml/gbdt_common.hpp"

#include <algorithm>
#include <cmath>

namespace phishinghook::ml::gbdt {

void FeatureBinner::fit(const Matrix& x, int max_bins) {
  if (max_bins < 2 || max_bins > 255) {
    throw InvalidArgument("FeatureBinner needs 2..255 bins");
  }
  cuts_.assign(x.cols(), {});
  std::vector<double> values;
  for (std::size_t f = 0; f < x.cols(); ++f) {
    values.assign(x.rows(), 0.0);  // re-grow: unique() below shrinks it
    for (std::size_t r = 0; r < x.rows(); ++r) values[r] = x.at(r, f);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() <= 1) continue;  // constant feature: single bin

    auto& cuts = cuts_[f];
    if (values.size() <= static_cast<std::size_t>(max_bins)) {
      // One bin per distinct value: cuts at midpoints.
      for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        cuts.push_back(0.5 * (values[i] + values[i + 1]));
      }
    } else {
      // Quantile cuts over the distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const std::size_t idx =
            static_cast<std::size_t>(static_cast<double>(b) *
                                     static_cast<double>(values.size()) /
                                     static_cast<double>(max_bins));
        const double cut = values[std::min(idx, values.size() - 1)];
        if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
      }
    }
  }
}

std::uint8_t FeatureBinner::bin(std::size_t feature, double v) const {
  const auto& cuts = cuts_[feature];
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), v);
  return static_cast<std::uint8_t>(it - cuts.begin());
}

std::vector<std::uint8_t> FeatureBinner::transform(const Matrix& x) const {
  std::vector<std::uint8_t> out(x.rows() * x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t f = 0; f < x.cols(); ++f) {
      out[r * x.cols() + f] = bin(f, x.at(r, f));
    }
  }
  return out;
}

}  // namespace phishinghook::ml::gbdt
