#include "ml/shap.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace phishinghook::ml {

namespace {

/// One element of the TreeSHAP feature path.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;
  double one_fraction = 0.0;
  double pweight = 0.0;
};

void extend(std::vector<PathElement>& path, double pz, double po, int pi) {
  const int l = static_cast<int>(path.size());
  path.push_back(PathElement{pi, pz, po, l == 0 ? 1.0 : 0.0});
  for (int i = l - 1; i >= 0; --i) {
    path[static_cast<std::size_t>(i + 1)].pweight +=
        po * path[static_cast<std::size_t>(i)].pweight *
        static_cast<double>(i + 1) / static_cast<double>(l + 1);
    path[static_cast<std::size_t>(i)].pweight =
        pz * path[static_cast<std::size_t>(i)].pweight *
        static_cast<double>(l - i) / static_cast<double>(l + 1);
  }
}

/// Removes element `i` from the path, undoing its extend contribution.
std::vector<PathElement> unwound(const std::vector<PathElement>& path, int i) {
  std::vector<PathElement> out = path;
  const int l = static_cast<int>(path.size()) - 1;
  const double one = path[static_cast<std::size_t>(i)].one_fraction;
  const double zero = path[static_cast<std::size_t>(i)].zero_fraction;
  double n = path[static_cast<std::size_t>(l)].pweight;
  for (int j = l - 1; j >= 0; --j) {
    if (one != 0.0) {
      const double t = out[static_cast<std::size_t>(j)].pweight;
      out[static_cast<std::size_t>(j)].pweight =
          n * static_cast<double>(l + 1) /
          (static_cast<double>(j + 1) * one);
      n = t - out[static_cast<std::size_t>(j)].pweight * zero *
                  static_cast<double>(l - j) / static_cast<double>(l + 1);
    } else {
      out[static_cast<std::size_t>(j)].pweight =
          out[static_cast<std::size_t>(j)].pweight *
          static_cast<double>(l + 1) / (zero * static_cast<double>(l - j));
    }
  }
  for (int j = i; j < l; ++j) {
    out[static_cast<std::size_t>(j)].feature_index =
        out[static_cast<std::size_t>(j + 1)].feature_index;
    out[static_cast<std::size_t>(j)].zero_fraction =
        out[static_cast<std::size_t>(j + 1)].zero_fraction;
    out[static_cast<std::size_t>(j)].one_fraction =
        out[static_cast<std::size_t>(j + 1)].one_fraction;
  }
  out.pop_back();
  return out;
}

/// Sum of path weights after unwinding element `i` (the per-feature factor
/// in the leaf contribution).
double unwound_sum(const std::vector<PathElement>& path, int i) {
  const int l = static_cast<int>(path.size()) - 1;
  const double one = path[static_cast<std::size_t>(i)].one_fraction;
  const double zero = path[static_cast<std::size_t>(i)].zero_fraction;
  double total = 0.0;
  double n = path[static_cast<std::size_t>(l)].pweight;
  for (int j = l - 1; j >= 0; --j) {
    if (one != 0.0) {
      const double t =
          n * static_cast<double>(l + 1) / (static_cast<double>(j + 1) * one);
      total += t;
      n = path[static_cast<std::size_t>(j)].pweight -
          t * zero * static_cast<double>(l - j) / static_cast<double>(l + 1);
    } else if (zero != 0.0) {
      total += path[static_cast<std::size_t>(j)].pweight *
               static_cast<double>(l + 1) /
               (zero * static_cast<double>(l - j));
    }
  }
  return total;
}

struct TreeShapContext {
  const std::vector<TreeNode>* nodes = nullptr;
  std::span<const double> x;
  std::vector<double>* phi = nullptr;
};

void recurse(const TreeShapContext& ctx, int node_id,
             std::vector<PathElement> path, double pz, double po, int pi) {
  const TreeNode& node = (*ctx.nodes)[static_cast<std::size_t>(node_id)];
  extend(path, pz, po, pi);

  if (node.is_leaf()) {
    for (int i = 1; i < static_cast<int>(path.size()); ++i) {
      const double w = unwound_sum(path, i);
      const PathElement& el = path[static_cast<std::size_t>(i)];
      (*ctx.phi)[static_cast<std::size_t>(el.feature_index)] +=
          w * (el.one_fraction - el.zero_fraction) * node.value;
    }
    return;
  }

  const TreeNode& left = (*ctx.nodes)[static_cast<std::size_t>(node.left)];
  const TreeNode& right = (*ctx.nodes)[static_cast<std::size_t>(node.right)];
  const bool go_left =
      ctx.x[static_cast<std::size_t>(node.feature)] <= node.threshold;
  const int hot = go_left ? node.left : node.right;
  const int cold = go_left ? node.right : node.left;
  const double hot_cover = go_left ? left.weight : right.weight;
  const double cold_cover = go_left ? right.weight : left.weight;
  const double cover = std::max(node.weight, 1e-12);

  double incoming_zero = 1.0;
  double incoming_one = 1.0;
  // If this feature already appears on the path, undo its element first.
  for (int i = 1; i < static_cast<int>(path.size()); ++i) {
    if (path[static_cast<std::size_t>(i)].feature_index == node.feature) {
      incoming_zero = path[static_cast<std::size_t>(i)].zero_fraction;
      incoming_one = path[static_cast<std::size_t>(i)].one_fraction;
      path = unwound(path, i);
      break;
    }
  }

  recurse(ctx, hot, path, incoming_zero * hot_cover / cover, incoming_one,
          node.feature);
  recurse(ctx, cold, path, incoming_zero * cold_cover / cover, 0.0,
          node.feature);
}

double expected_tree_value(const std::vector<TreeNode>& nodes, int node_id) {
  const TreeNode& node = nodes[static_cast<std::size_t>(node_id)];
  if (node.is_leaf()) return node.value;
  const TreeNode& left = nodes[static_cast<std::size_t>(node.left)];
  const TreeNode& right = nodes[static_cast<std::size_t>(node.right)];
  const double cover = std::max(node.weight, 1e-12);
  return (left.weight * expected_tree_value(nodes, node.left) +
          right.weight * expected_tree_value(nodes, node.right)) /
         cover;
}

}  // namespace

ShapExplanation tree_shap(const std::vector<TreeNode>& nodes,
                          std::span<const double> x, std::size_t n_features) {
  if (nodes.empty()) throw InvalidArgument("tree_shap on empty tree");
  ShapExplanation out;
  out.values.assign(n_features, 0.0);
  out.expected_value = expected_tree_value(nodes, 0);
  TreeShapContext ctx{&nodes, x, &out.values};
  recurse(ctx, 0, {}, 1.0, 1.0, -1);
  return out;
}

ShapExplanation tree_shap(const RandomForestClassifier& forest,
                          std::span<const double> x) {
  const auto& trees = forest.trees();
  if (trees.empty()) throw StateError("tree_shap on unfitted forest");
  const std::size_t n_features = x.size();
  ShapExplanation out;
  out.values.assign(n_features, 0.0);
  for (const DecisionTreeClassifier& tree : trees) {
    const ShapExplanation one = tree_shap(tree.nodes(), x, n_features);
    for (std::size_t i = 0; i < n_features; ++i) out.values[i] += one.values[i];
    out.expected_value += one.expected_value;
  }
  const double inv = 1.0 / static_cast<double>(trees.size());
  for (double& v : out.values) v *= inv;
  out.expected_value *= inv;
  return out;
}

std::vector<ShapExplanation> tree_shap_all(const RandomForestClassifier& forest,
                                           const Matrix& x) {
  std::vector<ShapExplanation> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(tree_shap(forest, x.row(r)));
  }
  return out;
}

ShapExplanation sampling_shap(
    const std::function<double(std::span<const double>)>& predict,
    std::span<const double> x, const Matrix& background, int permutations,
    std::uint64_t seed) {
  if (background.rows() == 0) {
    throw InvalidArgument("sampling_shap requires a background dataset");
  }
  const std::size_t d = x.size();
  common::Rng rng(seed);
  ShapExplanation out;
  out.values.assign(d, 0.0);

  // E[f] over the background.
  for (std::size_t r = 0; r < background.rows(); ++r) {
    out.expected_value += predict(background.row(r));
  }
  out.expected_value /= static_cast<double>(background.rows());

  std::vector<double> current(d);
  for (int p = 0; p < permutations; ++p) {
    const auto order = common::random_permutation(d, rng);
    const std::size_t bg = rng.next_below(background.rows());
    const auto bg_row = background.row(bg);
    for (std::size_t i = 0; i < d; ++i) current[i] = bg_row[i];
    double previous = predict(current);
    for (std::size_t feature : order) {
      current[feature] = x[feature];
      const double with_feature = predict(current);
      out.values[feature] += with_feature - previous;
      previous = with_feature;
    }
  }
  for (double& v : out.values) v /= static_cast<double>(permutations);
  return out;
}

}  // namespace phishinghook::ml
