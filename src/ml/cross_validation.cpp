#include "ml/cross_validation.hpp"

#include <algorithm>
#include <map>

#include "common/errors.hpp"
#include "common/thread_pool.hpp"

namespace phishinghook::ml {

namespace {

std::map<int, std::vector<std::size_t>> indices_by_class(
    const std::vector<int>& labels, common::Rng& rng) {
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(i);
  }
  for (auto& [label, indices] : by_class) rng.shuffle(indices);
  return by_class;
}

}  // namespace

std::vector<Fold> stratified_kfold(const std::vector<int>& labels, int k,
                                   common::Rng& rng) {
  if (k < 2) throw InvalidArgument("k-fold requires k >= 2");
  if (static_cast<std::size_t>(k) > labels.size()) {
    throw InvalidArgument("k-fold requires k <= sample count");
  }
  auto by_class = indices_by_class(labels, rng);

  // Deal each class round-robin over the folds' test sets.
  std::vector<std::vector<std::size_t>> test_sets(static_cast<std::size_t>(k));
  for (const auto& [label, indices] : by_class) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      test_sets[i % static_cast<std::size_t>(k)].push_back(indices[i]);
    }
  }

  std::vector<Fold> folds(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    auto& fold = folds[static_cast<std::size_t>(f)];
    fold.test_indices = test_sets[static_cast<std::size_t>(f)];
    std::sort(fold.test_indices.begin(), fold.test_indices.end());
    for (int other = 0; other < k; ++other) {
      if (other == f) continue;
      const auto& src = test_sets[static_cast<std::size_t>(other)];
      fold.train_indices.insert(fold.train_indices.end(), src.begin(),
                                src.end());
    }
    std::sort(fold.train_indices.begin(), fold.train_indices.end());
  }
  return folds;
}

Fold stratified_holdout(const std::vector<int>& labels, double test_fraction,
                        common::Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw InvalidArgument("test_fraction must be in (0, 1)");
  }
  auto by_class = indices_by_class(labels, rng);
  Fold fold;
  for (const auto& [label, indices] : by_class) {
    const std::size_t test_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(test_fraction *
                                    static_cast<double>(indices.size())));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < test_count ? fold.test_indices : fold.train_indices)
          .push_back(indices[i]);
    }
  }
  std::sort(fold.test_indices.begin(), fold.test_indices.end());
  std::sort(fold.train_indices.begin(), fold.train_indices.end());
  return fold;
}

std::vector<double> cross_validate_accuracy(const ModelFactory& make,
                                            const Matrix& x,
                                            const std::vector<int>& y,
                                            const std::vector<Fold>& folds) {
  return common::parallel_map<double>(folds.size(), [&](std::size_t f) {
    const Fold& fold = folds[f];
    const Matrix train_x = x.select_rows(fold.train_indices);
    const auto train_y = select(y, fold.train_indices);
    const Matrix test_x = x.select_rows(fold.test_indices);
    const auto test_y = select(y, fold.test_indices);
    auto model = make();
    model->fit(train_x, train_y);
    return compute_metrics(test_y, model->predict(test_x)).accuracy;
  });
}

}  // namespace phishinghook::ml
