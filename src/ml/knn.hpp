// k-Nearest Neighbors over opcode histograms (HSC category).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace phishinghook::ml {

enum class KnnMetric { kEuclidean, kManhattan, kCosine };

struct KnnConfig {
  int k = 7;
  KnnMetric metric = KnnMetric::kEuclidean;
  /// Weight votes by 1/(distance + eps) instead of uniformly.
  bool distance_weighted = true;
};

class KnnClassifier final : public TabularClassifier {
 public:
  explicit KnnClassifier(KnnConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "k-NN"; }

 private:
  double distance(std::span<const double> a, std::span<const double> b) const;

  KnnConfig config_;
  Matrix train_x_;
  std::vector<int> train_y_;
};

}  // namespace phishinghook::ml
