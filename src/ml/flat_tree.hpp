// Flattened tree-ensemble inference (DESIGN.md §10).
//
// The fitted ensembles walk node-based trees one row at a time on the
// legacy path (`predict_proba_nodewalk` / `raw_score` / `predict_row`).
// This compiles any of them into one contiguous structure-of-arrays node
// pool plus a batched traversal that processes rows in cache-blocked
// chunks: for each block of rows, every tree is walked for the whole block
// before moving to the next tree, so a tree's nodes stay hot across the
// block, the per-row accumulators stay in registers/L1, and nothing is
// allocated per row.
//
// Bit-identity contract: the flat walk performs exactly the legacy
// comparisons (x[f] <= t for binary trees, x[f] > t for CatBoost's
// oblivious level tests) and accumulates per-row tree contributions in the
// legacy tree order, so probabilities are identical doubles — asserted
// against the node-walk oracles in tests/test_features_fast.cpp, at every
// thread count in tests/test_parallel_determinism.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/matrix.hpp"

namespace phishinghook::ml {

struct ObliviousTree;  // catboost.hpp

class FlatTreeEnsemble {
 public:
  /// How per-row tree sums turn into a probability.
  enum class Output {
    kAverage,     ///< mean of leaf fractions (Random Forest)
    kSigmoidSum,  ///< sigmoid(base + sum of leaf values) (boosters)
  };

  FlatTreeEnsemble() = default;

  /// Random Forest: averages fitted CART leaf fractions.
  static FlatTreeEnsemble from_forest(
      const std::vector<DecisionTreeClassifier>& trees);

  /// XGBoost/LightGBM-style boosters: sigmoid over base + leaf weights.
  static FlatTreeEnsemble from_boosted(
      const std::vector<std::vector<TreeNode>>& trees, double base_score);

  /// CatBoost oblivious trees: per-level (feature, threshold) tests with
  /// `>` semantics indexing a 2^depth leaf table.
  static FlatTreeEnsemble from_oblivious(
      const std::vector<ObliviousTree>& trees, double base_score);

  bool empty() const { return tree_count_ == 0; }
  std::size_t tree_count() const { return tree_count_; }
  std::size_t node_count() const { return feature_.size(); }

  /// P(phishing) per row, parallelized over row chunks on the
  /// common::ThreadPool (each output slot written by exactly one task).
  std::vector<double> predict_proba(const Matrix& x) const;

  /// Allocation-free variant into a caller buffer of x.rows() doubles.
  /// Throws InvalidArgument on size mismatch, StateError when empty.
  void predict_into(const Matrix& x, std::span<double> out) const;

 private:
  /// Rows per cache block: 64 accumulators (one cache line's worth of
  /// probability state per 8 rows) keeps the block's feature rows and the
  /// current tree resident while bounding the accumulator footprint.
  static constexpr std::size_t kRowBlock = 64;

  void predict_block(const Matrix& x, std::size_t begin, std::size_t end,
                     std::span<double> out) const;

  enum class Kind { kBinary, kOblivious };

  Kind kind_ = Kind::kBinary;
  Output output_ = Output::kAverage;
  double base_score_ = 0.0;
  std::size_t tree_count_ = 0;

  // Binary section (RF / GBDT / LightGBM): SoA node pool, root per tree.
  std::vector<std::int32_t> feature_;   ///< -1 marks a leaf
  std::vector<double> threshold_;       ///< leaf: unused (0)
  std::vector<std::int32_t> left_;      ///< absolute node index
  std::vector<std::int32_t> right_;     ///< absolute node index
  std::vector<double> value_;           ///< leaf payload
  std::vector<std::uint32_t> roots_;

  // Oblivious section (CatBoost): per-tree level tests + leaf table,
  // stored contiguously across trees.
  std::vector<std::int32_t> level_feature_;
  std::vector<double> level_threshold_;
  std::vector<double> leaf_value_;
  std::vector<std::uint32_t> level_offset_;  ///< per tree, into level_*
  std::vector<std::uint32_t> level_depth_;   ///< per tree
  std::vector<std::uint32_t> leaf_offset_;   ///< per tree, into leaf_value_
};

}  // namespace phishinghook::ml
