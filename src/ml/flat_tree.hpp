// Flattened, branch-free tree-ensemble inference (DESIGN.md §10).
//
// The fitted ensembles walk node-based trees one row at a time on the
// legacy path (`predict_proba_nodewalk` / `raw_score` / `predict_row`).
// This compiles any of them into quantized flat structures evaluated in
// cache-blocked row batches with no data-dependent branches on the hot
// paths:
//
//  * Every split threshold is quantized into a per-feature sorted
//    cut-point table at compile time; compiled tests store the cut index
//    (rank) plus the interned double. Evaluation compares the raw feature
//    value against the interned cut directly: measured on the 48-feature
//    histogram workload, per-row rank binarization (a binary search per
//    feature per row) costs more than the whole node walk, while the
//    mask loops below are 64-bit-bound and gain nothing from integer
//    operands — see DESIGN.md §10 for the numbers.
//  * A block's feature values are transposed once into a feature-major
//    scratch pane so every per-test loop reads a contiguous vectorizable
//    lane of the block.
//  * Trees with at most 64 leaves (every XGBoost/LightGBM tree at the
//    shipped depths) evaluate QuickScorer-style: leaves are numbered
//    left-to-right, each internal node carries a bitvector with zeros over
//    its left subtree's leaves, a row starts from the all-leaves mask and
//    ANDs in the bitvector of every *failed* test, and the exit leaf is
//    the first surviving bit. The per-test inner loop over the row block
//    is branch-free and vectorizable (one compare, one OR, one AND per
//    row).
//  * Larger trees (deep Random Forest CARTs) use a compact 16-byte node
//    layout (children adjacent, leaves self-looping) chased for a fixed
//    per-tree depth with four interleaved rows, so the walk is branch-free
//    and the four pointer chases overlap in the memory pipeline.
//  * CatBoost's oblivious levels run as straight-line mask arithmetic,
//    level-outer / row-inner: `leaf[i] = (leaf[i] << 1) | (x[f] > t)`.
//
// Bit-identity contract: every compiled test performs the same double
// comparison as the legacy walk (thresholds are interned verbatim), the
// selected leaf is therefore the legacy leaf, and per-row tree
// contributions accumulate in legacy tree order, so probabilities are
// identical doubles — asserted against the node-walk oracles in
// tests/test_features_fast.cpp (every traversal × row-block combination),
// at every thread count in tests/test_parallel_determinism.cpp, and in
// the no-SIMD scalar-fallback CI build. The branch-free traversals
// require finite feature values (opcode histograms always are); NaN rows
// would diverge from the `x <= t` oracle semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/matrix.hpp"

namespace phishinghook::ml {

struct ObliviousTree;  // catboost.hpp

class FlatTreeEnsemble {
 public:
  /// How per-row tree sums turn into a probability.
  enum class Output {
    kAverage,     ///< mean of leaf fractions (Random Forest)
    kSigmoidSum,  ///< sigmoid(base + sum of leaf values) (boosters)
  };

  /// Which compiled evaluation runs. kAuto (production default) picks the
  /// measured winner: the interleaved branch-free walk for binary trees
  /// and the row-outer mask walk for oblivious trees (bench_infer's sweep
  /// shows a depth-5 walk doing 5 tests/row beating the bitvector's ~31,
  /// and the oblivious transpose costing more than cross-row SIMD saves
  /// at depth ≤ 6). kWalk forces the same walks explicitly; kBitvector
  /// forces the QuickScorer path where eligible (≤64 leaves, walk
  /// fallback above) and the transposed level-outer mask path for
  /// oblivious trees.
  enum class Traversal { kAuto, kWalk, kBitvector };

  /// Rows per cache block (transposed pane, masks and accumulators all
  /// live per-block). Default 32 (best across the bench_infer sweep);
  /// bench_infer sweeps 16..128.
  static constexpr std::size_t kDefaultRowBlock = 32;
  static constexpr std::size_t kMaxRowBlock = 256;

  FlatTreeEnsemble() = default;

  /// Random Forest: averages fitted CART leaf fractions.
  static FlatTreeEnsemble from_forest(
      const std::vector<DecisionTreeClassifier>& trees);

  /// XGBoost/LightGBM-style boosters: sigmoid over base + leaf weights.
  static FlatTreeEnsemble from_boosted(
      const std::vector<std::vector<TreeNode>>& trees, double base_score);

  /// CatBoost oblivious trees: per-level (feature, threshold) tests with
  /// `>` semantics indexing a 2^depth leaf table.
  static FlatTreeEnsemble from_oblivious(
      const std::vector<ObliviousTree>& trees, double base_score);

  bool empty() const { return tree_count_ == 0; }
  std::size_t tree_count() const { return tree_count_; }
  std::size_t node_count() const { return node_count_; }
  /// 1 + the highest feature id any test consults; predict requires at
  /// least this many columns.
  std::size_t n_features() const { return n_features_; }
  /// Distinct interned split thresholds across all cut-point tables.
  std::size_t cut_count() const { return cuts_.size(); }

  /// Trees evaluated on the QuickScorer bitvector (or oblivious mask)
  /// path under the current traversal setting.
  std::size_t bitvector_tree_count() const;

  void set_traversal(Traversal traversal) { traversal_ = traversal; }
  Traversal traversal() const { return traversal_; }
  /// Stable label of the path the current setting resolves to for this
  /// ensemble: "bitvector", "flat" (walk), or "mixed".
  const char* traversal_label() const;

  /// Rows per block, clamped to [4, kMaxRowBlock].
  void set_row_block(std::size_t rows);
  std::size_t row_block() const { return row_block_; }

  /// P(phishing) per row, parallelized over row chunks on the
  /// common::ThreadPool (each output slot written by exactly one task).
  std::vector<double> predict_proba(const Matrix& x) const;

  /// Allocation-light variant into a caller buffer of x.rows() doubles
  /// (one scratch allocation per parallel chunk). Throws InvalidArgument
  /// on size mismatch or when x has fewer than n_features() columns,
  /// StateError when empty.
  void predict_into(const Matrix& x, std::span<double> out) const;

 private:
  enum class Kind { kBinary, kOblivious };

  /// Compact walk node: 16 bytes, children adjacent (`right == left + 1`),
  /// stepped branch-free as `left + (x[feature] > threshold)`. Leaves
  /// self-loop (`left` = own index, `threshold` = +inf so the step never
  /// advances) and the walk runs a *fixed* per-tree depth with no leaf
  /// test; the landing node's payload lives in walk_node_value_.
  struct WalkNode {
    double threshold = 0.0;    ///< interned cut; +inf on leaves
    std::int32_t feature = 0;  ///< consulted even by leaves (always left)
    std::int32_t left = 0;
  };

  /// One QuickScorer test: AND `keep_mask` into the row's leaf mask when
  /// the test fails (x > threshold). Zeros cover the left subtree.
  struct BvTest {
    double threshold = 0.0;      ///< interned cut
    std::uint64_t keep_mask = 0;
    std::int32_t feature = 0;
  };

  /// Per-tree dispatch record, in legacy tree order.
  struct TreeRef {
    bool bitvector_eligible = false;
    std::uint32_t depth = 0;        ///< walk: fixed chase length
    std::uint32_t walk_root = 0;    ///< into walk_nodes_
    std::uint32_t test_begin = 0;   ///< into bv_tests_
    std::uint32_t test_end = 0;
    std::uint32_t leaf_begin = 0;   ///< into bv_leaf_value_
    std::uint64_t init_mask = 0;    ///< all leaves set
  };

  struct Scratch;  // per-chunk rank/mask buffers (flat_tree.cpp)

  void compile_binary(const std::vector<std::span<const TreeNode>>& trees);
  void compile_oblivious(const std::vector<ObliviousTree>& trees);
  /// Builds cuts_/cut_offset_/cut_len_ from every (feature, threshold)
  /// pair; rank_of returns a test threshold's index in its feature's cut
  /// table and intern_threshold the (bit-identical) interned double.
  void build_cut_tables(std::vector<std::pair<std::int32_t, double>> tests);
  std::uint32_t rank_of(std::int32_t feature, double threshold) const;
  double intern_threshold(std::int32_t feature, double threshold) const;

  void predict_block(const Matrix& x, std::size_t begin, std::size_t end,
                     std::span<double> out, Scratch& scratch) const;
  /// Copies rows [row0, row0 + rows) into the feature-major scratch pane.
  void transpose_block(const Matrix& x, std::size_t row0, std::size_t rows,
                       Scratch& scratch) const;

  Kind kind_ = Kind::kBinary;
  Output output_ = Output::kAverage;
  Traversal traversal_ = Traversal::kAuto;
  double base_score_ = 0.0;
  std::size_t tree_count_ = 0;
  std::size_t node_count_ = 0;
  std::size_t n_features_ = 0;
  std::size_t row_block_ = kDefaultRowBlock;
  std::size_t eligible_trees_ = 0;

  // Quantized cut-point tables: cuts_ holds each feature's sorted unique
  // thresholds back to back; cut_offset_/cut_len_ index it per feature.
  // Compiled tests store doubles interned through these tables.
  std::vector<double> cuts_;
  std::vector<std::uint32_t> cut_offset_;
  std::vector<std::uint32_t> cut_len_;
  /// Features with at least one cut — the only panes transpose_block
  /// fills (the pane itself stays indexed by raw feature id).
  std::vector<std::uint32_t> active_features_;

  // Binary section (RF / GBDT / LightGBM).
  std::vector<TreeRef> trees_;
  std::vector<WalkNode> walk_nodes_;
  std::vector<double> walk_node_value_;  ///< per node; leaves carry payload
  std::vector<BvTest> bv_tests_;
  std::vector<double> bv_leaf_value_;    ///< leaf payloads, in-order ids

  // Oblivious section (CatBoost): per-tree level tests + leaf table,
  // stored contiguously across trees.
  std::vector<std::int32_t> level_feature_;
  std::vector<double> level_threshold_;
  std::vector<double> leaf_value_;
  std::vector<std::uint32_t> level_offset_;  ///< per tree, into level_*
  std::vector<std::uint32_t> level_depth_;   ///< per tree
  std::vector<std::uint32_t> leaf_offset_;   ///< per tree, into leaf_value_
};

}  // namespace phishinghook::ml
