#include "ml/svm.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace phishinghook::ml {

SvmClassifier::SvmClassifier(SvmConfig config) : config_(config) {}

std::vector<double> SvmClassifier::transform(
    std::span<const double> row) const {
  std::vector<double> z(mean_.size());
  for (std::size_t c = 0; c < z.size(); ++c) {
    z[c] = (row[c] - mean_[c]) / stddev_[c];
  }
  if (config_.kernel == SvmKernel::kLinear) return z;

  std::vector<double> phi(rff_w_.size());
  const double scale = std::sqrt(2.0 / static_cast<double>(rff_w_.size()));
  for (std::size_t f = 0; f < rff_w_.size(); ++f) {
    double dot = rff_b_[f];
    const auto& w = rff_w_[f];
    for (std::size_t c = 0; c < z.size(); ++c) dot += w[c] * z[c];
    phi[f] = scale * std::cos(dot);
  }
  return phi;
}

void SvmClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw InvalidArgument("SVM::fit size mismatch");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  common::Rng rng(config_.seed);

  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x.at(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double delta = x.at(r, c) - mean_[c];
      stddev_[c] += delta * delta;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;
  }

  std::size_t dim = d;
  if (config_.kernel == SvmKernel::kRbf) {
    // Standardized features make pairwise distances ~ 2d, so a width an
    // order of magnitude below 1/d keeps the kernel in its informative
    // regime on these histogram dimensionalities.
    const double gamma =
        config_.gamma > 0.0 ? config_.gamma : 0.1 / static_cast<double>(d);
    rff_w_.assign(config_.rff_features, std::vector<double>(d));
    rff_b_.assign(config_.rff_features, 0.0);
    const double omega_scale = std::sqrt(2.0 * gamma);
    for (std::size_t f = 0; f < config_.rff_features; ++f) {
      for (std::size_t c = 0; c < d; ++c) {
        rff_w_[f][c] = omega_scale * rng.normal();
      }
      rff_b_[f] = rng.uniform(0.0, 2.0 * M_PI);
    }
    dim = config_.rff_features;
  }

  weights_.assign(dim, 0.0);
  bias_ = 0.0;

  // Primal hinge-loss SVM solved with full-batch Adam. The classic Pegasos
  // 1/(lambda t) schedule is unstable at the small lambdas these count
  // features need; Adam on the same objective (mean hinge + lambda/2 |w|^2)
  // converges to the identical optimum far more reliably.
  const std::size_t passes = static_cast<std::size_t>(config_.epochs) * 5;
  std::vector<std::vector<double>> features(n);
  for (std::size_t i = 0; i < n; ++i) features[i] = transform(x.row(i));

  std::vector<double> m_w(dim, 0.0), v_w(dim, 0.0), grad(dim, 0.0);
  double m_b = 0.0, v_b = 0.0;
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8, lr = 0.05;
  for (std::size_t step = 1; step <= passes; ++step) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& phi = features[i];
      const double label = y[i] != 0 ? 1.0 : -1.0;
      double margin = bias_;
      for (std::size_t c = 0; c < dim; ++c) margin += weights_[c] * phi[c];
      if (label * margin < 1.0) {  // hinge subgradient
        for (std::size_t c = 0; c < dim; ++c) grad[c] -= label * phi[c];
        grad_b -= label;
      }
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t c = 0; c < dim; ++c) {
      grad[c] = grad[c] * inv_n + config_.lambda * weights_[c];
    }
    grad_b *= inv_n;

    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
    for (std::size_t c = 0; c < dim; ++c) {
      m_w[c] = beta1 * m_w[c] + (1 - beta1) * grad[c];
      v_w[c] = beta2 * v_w[c] + (1 - beta2) * grad[c] * grad[c];
      weights_[c] -= lr * (m_w[c] / bc1) / (std::sqrt(v_w[c] / bc2) + eps);
    }
    m_b = beta1 * m_b + (1 - beta1) * grad_b;
    v_b = beta2 * v_b + (1 - beta2) * grad_b * grad_b;
    bias_ -= lr * (m_b / bc1) / (std::sqrt(v_b / bc2) + eps);
  }
}

double SvmClassifier::decision_function(std::span<const double> row) const {
  if (weights_.empty()) throw StateError("SVM::predict before fit");
  const auto phi = transform(row);
  double margin = bias_;
  for (std::size_t c = 0; c < weights_.size(); ++c) {
    margin += weights_[c] * phi[c];
  }
  return margin;
}

std::vector<double> SvmClassifier::predict_proba(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double margin = decision_function(x.row(r));
    out[r] = 1.0 / (1.0 + std::exp(-config_.platt_scale * margin));
  }
  return out;
}

}  // namespace phishinghook::ml
