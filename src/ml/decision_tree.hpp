// CART decision tree (gini impurity) — the base learner of the Random
// Forest HSC and the structure TreeSHAP explains.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "ml/classifier.hpp"

namespace phishinghook::ml {

/// One node of a binary tree stored in a flat array. Leaves have
/// feature == -1; `value` is the positive-class fraction at the leaf (for
/// internal nodes it is the subtree's training fraction, used by SHAP).
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;  ///< go left if x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;
  double weight = 0.0;  ///< training samples (or weight) covered

  bool is_leaf() const { return feature < 0; }
};

/// Per-matrix presorted feature order: `order` holds x.cols() blocks of
/// x.rows() row ids, block f sorted by (x[:, f], row id). Building it costs
/// one O(n log n) sort per feature; a tree fit on the same matrix can then
/// derive its root order by an O(n) filter instead of re-sorting. The
/// Random Forest builds one and shares it (read-only) across all trees.
struct FeaturePresort {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> order;

  static FeaturePresort build(const Matrix& x);
};

struct DecisionTreeConfig {
  int max_depth = 12;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features considered per split; 0 = all, otherwise a random subset of
  /// this size (the Random Forest's decorrelation knob).
  std::size_t max_features = 0;
  std::uint64_t seed = 1;
};

class DecisionTreeClassifier final : public TabularClassifier {
 public:
  explicit DecisionTreeClassifier(DecisionTreeConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;

  /// Weighted fit (bootstrap counts / boosting weights). `presort`, when
  /// given, must have been built from `x`; it is only read, so one instance
  /// can be shared by concurrent fits. Results are bit-identical with and
  /// without it.
  void fit_weighted(const Matrix& x, const std::vector<int>& y,
                    const std::vector<double>& weights,
                    const FeaturePresort* presort = nullptr);

  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "DecisionTree"; }

  void save(std::ostream& out) const override;
  static DecisionTreeClassifier load_from(std::istream& in);

  /// Untagged node/importance payload — embedded per-tree by the Random
  /// Forest artifact (which writes its own single tag).
  void save_payload(std::ostream& out) const;
  static DecisionTreeClassifier load_payload(std::istream& in);

  /// P(phishing) for a single row.
  double predict_row(std::span<const double> row) const;

  /// Flat node array (root at 0); consumed by TreeSHAP.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Gini-gain importances (normalized to sum 1; empty before fit).
  std::vector<double> feature_importances() const;

 private:
  DecisionTreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::size_t n_features_ = 0;
  std::vector<double> importances_;
};

}  // namespace phishinghook::ml
