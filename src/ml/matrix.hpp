// Dense row-major matrix of doubles — the feature container for the
// classical (HSC) models and the statistics layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/errors.hpp"

namespace phishinghook::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) {
    return std::span<double>(data_.data() + r * cols_, cols_);
  }
  std::span<const double> row(std::size_t r) const {
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  /// Rows selected by `indices`, in order (fold construction).
  Matrix select_rows(std::span<const std::size_t> indices) const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Select elements of `values` by `indices` (labels companion of
/// Matrix::select_rows).
template <typename T>
std::vector<T> select(const std::vector<T>& values,
                      std::span<const std::size_t> indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(values[i]);
  return out;
}

}  // namespace phishinghook::ml
