#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/gbdt_common.hpp"

namespace phishinghook::ml {

GradientBoostingClassifier::GradientBoostingClassifier(
    GradientBoostingConfig config)
    : config_(config) {}

int GradientBoostingClassifier::build_tree(
    const Matrix& x, const std::vector<double>& grad,
    const std::vector<double>& hess, std::vector<std::size_t>& indices,
    const std::vector<std::size_t>& features, int depth,
    std::vector<TreeNode>& tree) const {
  double g_sum = 0.0, h_sum = 0.0;
  for (std::size_t i : indices) {
    g_sum += grad[i];
    h_sum += hess[i];
  }

  const int node_id = static_cast<int>(tree.size());
  tree.push_back(TreeNode{});
  tree[static_cast<std::size_t>(node_id)].value =
      -g_sum / (h_sum + config_.lambda);
  tree[static_cast<std::size_t>(node_id)].weight = h_sum;

  if (depth >= config_.max_depth || indices.size() < 2) return node_id;

  const double parent_score = g_sum * g_sum / (h_sum + config_.lambda);
  const double gain_floor = config_.gamma + 1e-12;

  // Parallel best-split search: every candidate feature scans its own
  // sorted copy independently, then a serial reduction in candidate order
  // picks the winner. Ties resolve to the earliest (feature, position)
  // candidate via the strict `>` in both passes — exactly the serial scan's
  // outcome — so the fitted tree is thread-count-invariant.
  const std::vector<SplitResult> candidates =
      common::parallel_map<SplitResult>(features.size(), [&](std::size_t fi) {
        const std::size_t feature = features[fi];
        SplitResult local;
        local.gain = gain_floor;
        std::vector<std::pair<double, std::size_t>> sorted;
        sorted.reserve(indices.size());
        for (std::size_t i : indices) sorted.emplace_back(x.at(i, feature), i);
        std::sort(sorted.begin(), sorted.end());

        double gl = 0.0, hl = 0.0;
        for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
          const std::size_t i = sorted[k].second;
          gl += grad[i];
          hl += hess[i];
          if (sorted[k].first == sorted[k + 1].first) continue;
          const double hr = h_sum - hl;
          if (hl < config_.min_child_weight || hr < config_.min_child_weight) {
            continue;
          }
          const double gr = g_sum - gl;
          const double gain = 0.5 * (gl * gl / (hl + config_.lambda) +
                                     gr * gr / (hr + config_.lambda) -
                                     parent_score) -
                              config_.gamma;
          if (gain > local.gain) {
            local.gain = gain;
            local.feature = static_cast<int>(feature);
            local.threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
          }
        }
        return local;
      });

  SplitResult best;
  best.gain = gain_floor;
  for (const SplitResult& candidate : candidates) {
    if (candidate.feature >= 0 && candidate.gain > best.gain) best = candidate;
  }

  if (best.feature < 0) return node_id;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    (x.at(i, static_cast<std::size_t>(best.feature)) <= best.threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  tree[static_cast<std::size_t>(node_id)].feature = best.feature;
  tree[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  indices.clear();
  indices.shrink_to_fit();
  const int left =
      build_tree(x, grad, hess, left_idx, features, depth + 1, tree);
  tree[static_cast<std::size_t>(node_id)].left = left;
  const int right =
      build_tree(x, grad, hess, right_idx, features, depth + 1, tree);
  tree[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void GradientBoostingClassifier::fit(const Matrix& x,
                                     const std::vector<int>& y) {
  if (x.rows() != y.size()) throw InvalidArgument("XGBoost::fit size mismatch");
  if (x.rows() == 0) throw InvalidArgument("XGBoost::fit on empty data");
  trees_.clear();
  common::Rng rng(config_.seed);

  // Base score = log-odds of the positive rate.
  double pos = 0.0;
  for (int label : y) pos += label != 0 ? 1.0 : 0.0;
  const double rate =
      std::clamp(pos / static_cast<double>(y.size()), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(rate / (1.0 - rate));

  std::vector<double> scores(y.size(), base_score_);
  std::vector<double> grad(y.size()), hess(y.size());

  for (int round = 0; round < config_.n_rounds; ++round) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      const auto gh = gbdt::logistic_grad_hess(scores[i], y[i]);
      grad[i] = gh.grad;
      hess[i] = gh.hess;
    }

    // Row subsample.
    std::vector<std::size_t> indices;
    indices.reserve(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (config_.subsample >= 1.0 || rng.bernoulli(config_.subsample)) {
        indices.push_back(i);
      }
    }
    if (indices.size() < 2) continue;

    // Column subsample.
    std::vector<std::size_t> features(x.cols());
    for (std::size_t f = 0; f < x.cols(); ++f) features[f] = f;
    if (config_.colsample < 1.0) {
      rng.shuffle(features);
      const std::size_t keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(config_.colsample *
                                      static_cast<double>(x.cols())));
      features.resize(keep);
    }

    std::vector<TreeNode> tree;
    build_tree(x, grad, hess, indices, features, 0, tree);

    // Shrink leaf weights by the learning rate, then update scores.
    for (TreeNode& node : tree) node.value *= config_.learning_rate;
    for (std::size_t i = 0; i < y.size(); ++i) {
      int node = 0;
      const auto row = x.row(i);
      while (!tree[static_cast<std::size_t>(node)].is_leaf()) {
        const TreeNode& n = tree[static_cast<std::size_t>(node)];
        node = row[static_cast<std::size_t>(n.feature)] <= n.threshold
                   ? n.left
                   : n.right;
      }
      scores[i] += tree[static_cast<std::size_t>(node)].value;
    }
    trees_.push_back(std::move(tree));
  }
  flat_ = FlatTreeEnsemble::from_boosted(trees_, base_score_);
}

double GradientBoostingClassifier::raw_score(
    std::span<const double> row) const {
  if (trees_.empty()) throw StateError("XGBoost::predict before fit");
  double score = base_score_;
  for (const auto& tree : trees_) {
    int node = 0;
    while (!tree[static_cast<std::size_t>(node)].is_leaf()) {
      const TreeNode& n = tree[static_cast<std::size_t>(node)];
      node = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right;
    }
    score += tree[static_cast<std::size_t>(node)].value;
  }
  return score;
}

std::vector<double> GradientBoostingClassifier::predict_proba(
    const Matrix& x) const {
  if (trees_.empty()) throw StateError("XGBoost::predict before fit");
  return flat_.predict_proba(x);
}

std::vector<double> GradientBoostingClassifier::predict_proba_nodewalk(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  common::parallel_for_chunks(
      x.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          out[r] = gbdt::sigmoid(raw_score(x.row(r)));
        }
      });
  return out;
}

}  // namespace phishinghook::ml
