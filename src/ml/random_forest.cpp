#include "ml/random_forest.hpp"

#include <cmath>
#include <utility>

#include "common/thread_pool.hpp"

namespace phishinghook::ml {

RandomForestClassifier::RandomForestClassifier(RandomForestConfig config)
    : config_(config) {}

void RandomForestClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) {
    throw InvalidArgument("RandomForest::fit size mismatch");
  }
  trees_.clear();
  n_features_ = x.cols();
  common::Rng rng(config_.seed);

  const std::size_t max_features =
      config_.max_features > 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(x.cols()))));

  // Determinism by pre-draw: all bootstrap weights and per-tree seeds come
  // out of the master RNG serially, in the same order a serial fit would
  // consume them. Tree fitting then has no shared mutable state and each
  // tree lands in its pre-assigned slot, so the forest is bit-identical at
  // every thread count.
  const std::size_t n_trees =
      config_.n_trees > 0 ? static_cast<std::size_t>(config_.n_trees) : 0;
  std::vector<std::vector<double>> bootstrap(n_trees);
  std::vector<std::uint64_t> seeds(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    // Bootstrap as integer sample weights (identical distribution to
    // resampling rows, cheaper on memory).
    bootstrap[t].assign(x.rows(), 0.0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      bootstrap[t][rng.next_below(x.rows())] += 1.0;
    }
    seeds[t] = rng.next_u64();
  }

  // Every tree sorts the same matrix, so sort it once and share the result
  // read-only: each tree derives its root order by an O(n) filter of the
  // presorted blocks instead of its own O(n log n) per-feature sorts.
  const FeaturePresort presort = FeaturePresort::build(x);

  trees_.resize(n_trees);
  common::parallel_for(n_trees, [&](std::size_t t) {
    DecisionTreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.max_features = max_features;
    tree_config.seed = seeds[t];
    DecisionTreeClassifier tree(tree_config);
    tree.fit_weighted(x, y, bootstrap[t], &presort);
    trees_[t] = std::move(tree);
  });
  flat_ = FlatTreeEnsemble::from_forest(trees_);
}

std::vector<double> RandomForestClassifier::predict_proba(
    const Matrix& x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict before fit");
  return flat_.predict_proba(x);
}

std::vector<double> RandomForestClassifier::predict_proba_nodewalk(
    const Matrix& x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict before fit");
  // Row-outer / tree-inner: each row's feature span stays hot in cache
  // across the whole forest, and rows parallelize independently.
  const double n_trees = static_cast<double>(trees_.size());
  std::vector<double> out(x.rows(), 0.0);
  common::parallel_for_chunks(x.rows(), [&](std::size_t begin,
                                            std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto row = x.row(r);
      double sum = 0.0;
      for (const DecisionTreeClassifier& tree : trees_) {
        sum += tree.predict_row(row);
      }
      out[r] = sum / n_trees;
    }
  });
  return out;
}

std::vector<double> RandomForestClassifier::feature_importances() const {
  if (trees_.empty()) throw StateError("RandomForest importances before fit");
  // Tree-outer here is already the cache-friendly orientation: the inner
  // loop walks each tree's importance vector and `out` contiguously.
  std::vector<double> out(n_features_, 0.0);
  for (const DecisionTreeClassifier& tree : trees_) {
    const auto imp = tree.feature_importances();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += imp[i];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace phishinghook::ml
