#include "ml/random_forest.hpp"

#include <cmath>

namespace phishinghook::ml {

RandomForestClassifier::RandomForestClassifier(RandomForestConfig config)
    : config_(config) {}

void RandomForestClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) {
    throw InvalidArgument("RandomForest::fit size mismatch");
  }
  trees_.clear();
  n_features_ = x.cols();
  common::Rng rng(config_.seed);

  const std::size_t max_features =
      config_.max_features > 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(x.cols()))));

  for (int t = 0; t < config_.n_trees; ++t) {
    // Bootstrap as integer sample weights (identical distribution to
    // resampling rows, cheaper on memory).
    std::vector<double> weights(x.rows(), 0.0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      weights[rng.next_below(x.rows())] += 1.0;
    }
    DecisionTreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.max_features = max_features;
    tree_config.seed = rng.next_u64();
    DecisionTreeClassifier tree(tree_config);
    tree.fit_weighted(x, y, weights);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForestClassifier::predict_proba(
    const Matrix& x) const {
  if (trees_.empty()) throw StateError("RandomForest::predict before fit");
  std::vector<double> out(x.rows(), 0.0);
  for (const DecisionTreeClassifier& tree : trees_) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      out[r] += tree.predict_row(x.row(r));
    }
  }
  for (double& p : out) p /= static_cast<double>(trees_.size());
  return out;
}

std::vector<double> RandomForestClassifier::feature_importances() const {
  if (trees_.empty()) throw StateError("RandomForest importances before fit");
  std::vector<double> out(n_features_, 0.0);
  for (const DecisionTreeClassifier& tree : trees_) {
    const auto imp = tree.feature_importances();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += imp[i];
  }
  double total = 0.0;
  for (double v : out) total += v;
  if (total > 0.0) {
    for (double& v : out) v /= total;
  }
  return out;
}

}  // namespace phishinghook::ml
