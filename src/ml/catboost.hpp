// CatBoost-style gradient boosting (HSC category).
//
// Reproduces CatBoost's two structural signatures on this (fully numeric)
// task: *oblivious* (symmetric) trees — every level of the tree applies the
// same (feature, threshold) test, so a depth-k tree is a 2^k-leaf lookup
// table — and Bayesian-bootstrap sample weighting per round (CatBoost's
// bagging-temperature mechanism). Ordered boosting proper targets
// categorical target-statistics leakage, which does not arise on numeric
// opcode histograms; the permutation machinery is therefore represented by
// the per-round weight resampling (documented simplification).
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"
#include "ml/flat_tree.hpp"
#include "ml/gbdt_common.hpp"

namespace phishinghook::ml {

struct CatBoostConfig {
  int n_rounds = 200;
  int depth = 6;          ///< oblivious tree depth (2^depth leaves)
  int max_bins = 63;
  double learning_rate = 0.08;
  double lambda = 3.0;
  double bagging_temperature = 1.0;  ///< 0 = no reweighting
  std::uint64_t seed = 23;
};

/// One oblivious tree: `depth` (feature, threshold) tests shared across the
/// level, and 2^depth leaf values indexed by the test-result bitmask.
struct ObliviousTree {
  std::vector<int> features;
  std::vector<double> thresholds;
  std::vector<double> leaf_values;
};

class CatBoostClassifier final : public TabularClassifier {
 public:
  explicit CatBoostClassifier(CatBoostConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;

  /// Batched inference on the flattened level/leaf arrays (compiled at
  /// fit/load time); bit-identical to predict_proba_nodewalk.
  std::vector<double> predict_proba(const Matrix& x) const override;

  /// The original per-row level-walk path (equivalence oracle).
  std::vector<double> predict_proba_nodewalk(const Matrix& x) const;

  const FlatTreeEnsemble* flat_ensemble() const override {
    return flat_.empty() ? nullptr : &flat_;
  }

  std::string name() const override { return "CatBoost"; }

  void save(std::ostream& out) const override;
  static CatBoostClassifier load_from(std::istream& in);

  double raw_score(std::span<const double> row) const;
  const std::vector<ObliviousTree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }

 private:
  CatBoostConfig config_;
  std::vector<ObliviousTree> trees_;
  double base_score_ = 0.0;
  FlatTreeEnsemble flat_;  ///< rebuilt after fit() and load_from()
};

}  // namespace phishinghook::ml
