#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace phishinghook::ml {

namespace {

double gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTreeClassifier::DecisionTreeClassifier(DecisionTreeConfig config)
    : config_(config) {}

void DecisionTreeClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  fit_weighted(x, y, std::vector<double>(y.size(), 1.0));
}

void DecisionTreeClassifier::fit_weighted(const Matrix& x,
                                          const std::vector<int>& y,
                                          const std::vector<double>& weights) {
  if (x.rows() != y.size() || y.size() != weights.size()) {
    throw InvalidArgument("DecisionTree::fit size mismatch");
  }
  if (x.rows() == 0) throw InvalidArgument("DecisionTree::fit on empty data");
  nodes_.clear();
  n_features_ = x.cols();
  importances_.assign(n_features_, 0.0);
  std::vector<std::size_t> indices;
  indices.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (weights[i] > 0.0) indices.push_back(i);  // skip unsampled bootstrap rows
  }
  if (indices.empty()) throw InvalidArgument("DecisionTree::fit zero weight");
  common::Rng rng(config_.seed);
  build(x, y, weights, indices, 0, rng);

  double total = std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

int DecisionTreeClassifier::build(const Matrix& x, const std::vector<int>& y,
                                  const std::vector<double>& weights,
                                  std::vector<std::size_t>& indices, int depth,
                                  common::Rng& rng) {
  double total_weight = 0.0;
  double pos_weight = 0.0;
  for (std::size_t i : indices) {
    total_weight += weights[i];
    if (y[i] != 0) pos_weight += weights[i];
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{});
  nodes_[node_id].value = total_weight > 0.0 ? pos_weight / total_weight : 0.0;
  nodes_[node_id].weight = total_weight;

  const bool pure = pos_weight <= 0.0 || pos_weight >= total_weight;
  if (depth >= config_.max_depth || pure ||
      indices.size() < config_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (Random Forest mode).
  std::vector<std::size_t> features(n_features_);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = n_features_;
  if (config_.max_features > 0 && config_.max_features < n_features_) {
    rng.shuffle(features);
    feature_count = config_.max_features;
  }

  const double parent_impurity = gini(pos_weight, total_weight);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(indices.size());
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t feature = features[fi];
    sorted.clear();
    for (std::size_t i : indices) sorted.emplace_back(x.at(i, feature), i);
    std::sort(sorted.begin(), sorted.end());

    double left_weight = 0.0, left_pos = 0.0;
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k].second;
      left_weight += weights[i];
      if (y[i] != 0) left_pos += weights[i];
      if (sorted[k].first == sorted[k + 1].first) continue;  // tied values
      const std::size_t left_count = k + 1;
      const std::size_t right_count = sorted.size() - left_count;
      if (left_count < config_.min_samples_leaf ||
          right_count < config_.min_samples_leaf) {
        continue;
      }
      const double right_weight = total_weight - left_weight;
      const double right_pos = pos_weight - left_pos;
      const double child_impurity =
          (left_weight * gini(left_pos, left_weight) +
           right_weight * gini(right_pos, right_weight)) /
          total_weight;
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    (x.at(i, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  importances_[static_cast<std::size_t>(best_feature)] +=
      best_gain * total_weight;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  indices.clear();
  indices.shrink_to_fit();
  const int left = build(x, y, weights, left_idx, depth + 1, rng);
  nodes_[node_id].left = left;
  const int right = build(x, y, weights, right_idx, depth + 1, rng);
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTreeClassifier::predict_row(std::span<const double> row) const {
  if (nodes_.empty()) throw StateError("DecisionTree::predict before fit");
  int node = 0;
  while (!nodes_[static_cast<std::size_t>(node)].is_leaf()) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    node = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

std::vector<double> DecisionTreeClassifier::predict_proba(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

std::vector<double> DecisionTreeClassifier::feature_importances() const {
  return importances_;
}

}  // namespace phishinghook::ml
