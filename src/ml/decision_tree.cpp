#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <utility>

#include "common/thread_pool.hpp"

namespace phishinghook::ml {

namespace {

double gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

/// A pending node on the explicit build stack. Nodes do not own any row
/// storage: they are a `[begin, end)` window into the per-tree arenas (one
/// original-order row-id array plus one presorted row-id array per feature),
/// which are partitioned in place as the tree descends.
struct BuildItem {
  std::size_t begin = 0;
  std::size_t end = 0;
  int depth = 0;
  int parent = -1;  ///< node id to link into; -1 for the root
  bool is_left = false;
};

/// Stable in-place partition of `seg[0..m)` by the per-row `go_left` mask:
/// left rows keep their relative order at the front, right rows at the back.
/// `scratch` must hold at least m entries. Branchless on purpose: the mask
/// is ~50/50 and data-random at every split, so a conditional here costs a
/// misprediction per element. Both stores always execute and the cursors
/// advance by the mask; the in-place left store trails the read cursor
/// (nl <= k), so the single pass is safe.
void partition_segment(std::uint32_t* seg, std::size_t m,
                       const std::vector<std::uint8_t>& go_left,
                       std::vector<std::uint32_t>& scratch) {
  std::size_t nl = 0, nr = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const std::uint32_t v = seg[k];
    const std::uint8_t left = go_left[v];
    seg[nl] = v;
    scratch[nr] = v;
    nl += left;
    nr += 1 - left;
  }
  std::copy(scratch.begin(), scratch.begin() + nr, seg + nl);
}

}  // namespace

FeaturePresort FeaturePresort::build(const Matrix& x) {
  FeaturePresort presort;
  presort.rows = x.rows();
  presort.cols = x.cols();
  presort.order.resize(x.rows() * x.cols());
  // Features sort independently into disjoint blocks, so this fans out
  // without affecting the result.
  common::parallel_for_chunks(x.cols(), [&](std::size_t begin,
                                            std::size_t end) {
    std::vector<std::pair<double, std::uint32_t>> pairs(x.rows());
    for (std::size_t f = begin; f < end; ++f) {
      for (std::size_t r = 0; r < x.rows(); ++r) {
        pairs[r] = {x.at(r, f), static_cast<std::uint32_t>(r)};
      }
      std::sort(pairs.begin(), pairs.end());
      std::uint32_t* block = presort.order.data() + f * x.rows();
      for (std::size_t r = 0; r < x.rows(); ++r) block[r] = pairs[r].second;
    }
  });
  return presort;
}

DecisionTreeClassifier::DecisionTreeClassifier(DecisionTreeConfig config)
    : config_(config) {}

void DecisionTreeClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  fit_weighted(x, y, std::vector<double>(y.size(), 1.0));
}

void DecisionTreeClassifier::fit_weighted(const Matrix& x,
                                          const std::vector<int>& y,
                                          const std::vector<double>& weights,
                                          const FeaturePresort* presort) {
  if (x.rows() != y.size() || y.size() != weights.size()) {
    throw InvalidArgument("DecisionTree::fit size mismatch");
  }
  if (x.rows() == 0) throw InvalidArgument("DecisionTree::fit on empty data");
  nodes_.clear();
  n_features_ = x.cols();
  importances_.assign(n_features_, 0.0);

  // Rows this tree trains on, in ascending-row ("original") order — the
  // order the recursive version accumulated node weight sums in.
  std::vector<std::uint32_t> idx;
  idx.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (weights[i] > 0.0) {  // skip unsampled bootstrap rows
      idx.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (idx.empty()) throw InvalidArgument("DecisionTree::fit zero weight");
  const std::size_t m0 = idx.size();

  // Sorted-order arena: `order` holds n_features blocks of m0 row ids,
  // block f sorted by (x[:, f], row). Descendant nodes inherit sorted order
  // through stable in-place partitions of their [begin, end) window, so no
  // node below the root ever sorts. Ties break by row id, matching the
  // (value, index) pair order per-node std::sort produced. Row ids are
  // 4 bytes, so the arena is F*n*4 bytes and the partition working set
  // stays cache-resident.
  //
  // With a shared presort (the Random Forest path) the root order is an
  // O(F*n) filter of the full-matrix order down to the rows this tree
  // trains on — filtering a sorted sequence keeps it sorted, so this is
  // bit-identical to sorting the subset. Without one, sort here.
  if (presort != nullptr &&
      (presort->rows != x.rows() || presort->cols != x.cols())) {
    throw InvalidArgument("DecisionTree::fit presort shape mismatch");
  }
  // One slot of slack: the branchless filter below stores before advancing
  // its cursor, so a trailing dropped row writes (harmlessly) one past the
  // block end — for the last block that is one past the arena end.
  std::vector<std::uint32_t> order(n_features_ * m0 + 1);
  {
    if (presort != nullptr) {
      for (std::size_t f = 0; f < n_features_; ++f) {
        const std::uint32_t* full = presort->order.data() + f * x.rows();
        std::uint32_t* block = order.data() + f * m0;
        std::size_t nk = 0;
        for (std::size_t r = 0; r < x.rows(); ++r) {
          const std::uint32_t v = full[r];
          block[nk] = v;
          nk += weights[v] > 0.0 ? 1 : 0;
        }
      }
    } else {
      std::vector<std::pair<double, std::uint32_t>> pairs(m0);
      for (std::size_t f = 0; f < n_features_; ++f) {
        for (std::size_t k = 0; k < m0; ++k) {
          pairs[k] = {x.at(idx[k], f), idx[k]};
        }
        std::sort(pairs.begin(), pairs.end());
        std::uint32_t* block = order.data() + f * m0;
        for (std::size_t k = 0; k < m0; ++k) block[k] = pairs[k].second;
      }
    }
  }

  common::Rng rng(config_.seed);

  // Scratch reused across all nodes: candidate-feature order, the stable
  // partition buffer, and a per-row left/right mask (only the current
  // node's rows are ever read back, so stale bytes are harmless).
  std::vector<std::size_t> features(n_features_);
  std::vector<std::uint32_t> scratch(m0);
  std::vector<std::uint8_t> go_left(x.rows(), 0);

  // Explicit DFS; pushing right before left reproduces the recursion's
  // preorder, so node ids, RNG draws, and importance accumulation order are
  // identical to the old recursive build. In-place segment partitions make
  // this safe: the left subtree only touches [begin, mid), which is fully
  // settled before the right item's [mid, end) is popped.
  std::vector<BuildItem> stack;
  stack.push_back(BuildItem{0, m0, 0, -1, false});
  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    const std::size_t m = item.end - item.begin;

    double total_weight = 0.0;
    double pos_weight = 0.0;
    for (std::size_t k = item.begin; k < item.end; ++k) {
      const std::uint32_t i = idx[k];
      total_weight += weights[i];
      if (y[i] != 0) pos_weight += weights[i];
    }

    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back(TreeNode{});
    nodes_[node_id].value =
        total_weight > 0.0 ? pos_weight / total_weight : 0.0;
    nodes_[node_id].weight = total_weight;
    if (item.parent >= 0) {
      (item.is_left ? nodes_[item.parent].left : nodes_[item.parent].right) =
          node_id;
    }

    const bool pure = pos_weight <= 0.0 || pos_weight >= total_weight;
    if (item.depth >= config_.max_depth || pure ||
        m < config_.min_samples_split) {
      continue;
    }

    // Candidate features: all, or a random subset (Random Forest mode).
    std::iota(features.begin(), features.end(), std::size_t{0});
    std::size_t feature_count = n_features_;
    if (config_.max_features > 0 && config_.max_features < n_features_) {
      rng.shuffle(features);
      feature_count = config_.max_features;
    }

    const double parent_impurity = gini(pos_weight, total_weight);
    double best_gain = 1e-12;
    int best_feature = -1;
    double best_threshold = 0.0;

    for (std::size_t fi = 0; fi < feature_count; ++fi) {
      const std::size_t feature = features[fi];
      const std::uint32_t* block = order.data() + feature * m0 + item.begin;

      double left_weight = 0.0, left_pos = 0.0;
      double v_next = x.at(block[0], feature);
      for (std::size_t k = 0; k + 1 < m; ++k) {
        const std::uint32_t i = block[k];
        const double v_k = v_next;
        v_next = x.at(block[k + 1], feature);
        left_weight += weights[i];
        if (y[i] != 0) left_pos += weights[i];
        if (v_k == v_next) continue;  // tied values
        const std::size_t left_count = k + 1;
        const std::size_t right_count = m - left_count;
        if (left_count < config_.min_samples_leaf ||
            right_count < config_.min_samples_leaf) {
          continue;
        }
        const double right_weight = total_weight - left_weight;
        const double right_pos = pos_weight - left_pos;
        const double child_impurity =
            (left_weight * gini(left_pos, left_weight) +
             right_weight * gini(right_pos, right_weight)) /
            total_weight;
        const double gain = parent_impurity - child_impurity;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(feature);
          best_threshold = 0.5 * (v_k + v_next);
        }
      }
    }

    if (best_feature < 0) continue;

    std::size_t left_count = 0;
    for (std::size_t k = item.begin; k < item.end; ++k) {
      const std::uint32_t i = idx[k];
      const bool left =
          x.at(i, static_cast<std::size_t>(best_feature)) <= best_threshold;
      go_left[i] = left ? 1 : 0;
      if (left) ++left_count;
    }
    if (left_count == 0 || left_count == m) continue;

    importances_[static_cast<std::size_t>(best_feature)] +=
        best_gain * total_weight;
    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;

    // Stable in-place partition of the original-order ids and of every
    // presorted block: one cache-friendly pass per array, no allocations.
    // This is what replaces the per-node re-sort.
    partition_segment(idx.data() + item.begin, m, go_left, scratch);
    for (std::size_t f = 0; f < n_features_; ++f) {
      partition_segment(order.data() + f * m0 + item.begin, m, go_left,
                        scratch);
    }

    const std::size_t mid = item.begin + left_count;
    stack.push_back(BuildItem{mid, item.end, item.depth + 1, node_id, false});
    stack.push_back(BuildItem{item.begin, mid, item.depth + 1, node_id, true});
  }

  double total = std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
}

double DecisionTreeClassifier::predict_row(std::span<const double> row) const {
  if (nodes_.empty()) throw StateError("DecisionTree::predict before fit");
  int node = 0;
  while (!nodes_[static_cast<std::size_t>(node)].is_leaf()) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    node = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

std::vector<double> DecisionTreeClassifier::predict_proba(
    const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

std::vector<double> DecisionTreeClassifier::feature_importances() const {
  return importances_;
}

}  // namespace phishinghook::ml
