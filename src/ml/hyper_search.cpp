#include "ml/hyper_search.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace phishinghook::ml {

namespace {

/// Scores every assignment as an independent parallel task and reduces the
/// best trial serially in trial order (strict `>`, earliest trial wins) —
/// the same winner a serial loop picks, at every thread count.
Trial best_of(const HyperSearch& search, const ClassifierFactory& factory,
              const std::vector<ParamAssignment>& trials, const Matrix& x,
              const std::vector<int>& y, bool log_trials) {
  obs::ScopedSpan search_span("hyper.search");
  obs::Counter trials_total =
      obs::MetricsRegistry::global().counter("hyper_trials_total");
  const std::vector<double> scores = common::parallel_map<double>(
      trials.size(), [&](std::size_t t) {
        obs::ScopedSpan trial_span("hyper.trial");
        const double score = search.evaluate(factory, trials[t], x, y);
        trials_total.inc();
        return score;
      });
  Trial best;
  best.score = -1.0;
  for (std::size_t t = 0; t < trials.size(); ++t) {
    if (log_trials) common::log_debug("grid trial ", t, " score ", scores[t]);
    if (scores[t] > best.score) best = Trial{trials[t], scores[t]};
  }
  return best;
}

}  // namespace

double HyperSearch::evaluate(const ClassifierFactory& factory,
                             const ParamAssignment& params, const Matrix& x,
                             const std::vector<int>& y) const {
  common::Rng rng(config_.seed);
  const auto folds = stratified_kfold(y, config_.folds, rng);
  const std::vector<double> accuracies = cross_validate_accuracy(
      [&] { return factory(params); }, x, y, folds);
  double total = 0.0;
  for (double accuracy : accuracies) total += accuracy;
  return total / static_cast<double>(folds.size());
}

Trial HyperSearch::grid_search(
    const ClassifierFactory& factory,
    const std::map<std::string, std::vector<double>>& space, const Matrix& x,
    const std::vector<int>& y) const {
  // Enumerate the cartesian product with a mixed-radix counter (serially,
  // so the trial order matches the sequential search), then score the grid
  // points in parallel.
  std::vector<std::string> names;
  std::vector<std::size_t> sizes;
  for (const auto& [name, values] : space) {
    if (values.empty()) throw InvalidArgument("empty grid axis '" + name + "'");
    names.push_back(name);
    sizes.push_back(values.size());
  }
  std::vector<ParamAssignment> grid;
  std::vector<std::size_t> counter(names.size(), 0);
  while (static_cast<int>(grid.size()) < config_.max_trials) {
    ParamAssignment params;
    for (std::size_t i = 0; i < names.size(); ++i) {
      params[names[i]] = space.at(names[i])[counter[i]];
    }
    grid.push_back(std::move(params));

    // Increment the mixed-radix counter; stop after the last combination.
    std::size_t axis = 0;
    while (axis < counter.size()) {
      if (++counter[axis] < sizes[axis]) break;
      counter[axis] = 0;
      ++axis;
    }
    if (axis == counter.size()) break;
  }
  return best_of(*this, factory, grid, x, y, /*log_trials=*/true);
}

Trial HyperSearch::random_search(
    const ClassifierFactory& factory,
    const std::map<std::string, std::vector<double>>& space, const Matrix& x,
    const std::vector<int>& y, int n_trials) const {
  // Pre-draw every assignment from the RNG serially (same draw order as the
  // sequential search), then score the draws in parallel.
  common::Rng rng(config_.seed ^ 0xABCDEF);
  const int trials = std::min(n_trials, config_.max_trials);
  std::vector<ParamAssignment> draws;
  draws.reserve(trials > 0 ? static_cast<std::size_t>(trials) : 0);
  for (int t = 0; t < trials; ++t) {
    ParamAssignment params;
    for (const auto& [name, values] : space) {
      if (values.empty()) throw InvalidArgument("empty axis '" + name + "'");
      params[name] = values[rng.next_below(values.size())];
    }
    draws.push_back(std::move(params));
  }
  return best_of(*this, factory, draws, x, y, /*log_trials=*/false);
}

}  // namespace phishinghook::ml
