#include "ml/hyper_search.hpp"

#include "common/logging.hpp"

namespace phishinghook::ml {

double HyperSearch::evaluate(const ClassifierFactory& factory,
                             const ParamAssignment& params, const Matrix& x,
                             const std::vector<int>& y) const {
  common::Rng rng(config_.seed);
  const auto folds = stratified_kfold(y, config_.folds, rng);
  double total = 0.0;
  for (const Fold& fold : folds) {
    const Matrix train_x = x.select_rows(fold.train_indices);
    const auto train_y = select(y, fold.train_indices);
    const Matrix test_x = x.select_rows(fold.test_indices);
    const auto test_y = select(y, fold.test_indices);
    auto model = factory(params);
    model->fit(train_x, train_y);
    total += compute_metrics(test_y, model->predict(test_x)).accuracy;
  }
  return total / static_cast<double>(folds.size());
}

Trial HyperSearch::grid_search(
    const ClassifierFactory& factory,
    const std::map<std::string, std::vector<double>>& space, const Matrix& x,
    const std::vector<int>& y) const {
  // Enumerate the cartesian product with a mixed-radix counter.
  std::vector<std::string> names;
  std::vector<std::size_t> sizes;
  for (const auto& [name, values] : space) {
    if (values.empty()) throw InvalidArgument("empty grid axis '" + name + "'");
    names.push_back(name);
    sizes.push_back(values.size());
  }
  Trial best;
  best.score = -1.0;
  std::vector<std::size_t> counter(names.size(), 0);
  int trials = 0;
  while (trials < config_.max_trials) {
    ParamAssignment params;
    for (std::size_t i = 0; i < names.size(); ++i) {
      params[names[i]] = space.at(names[i])[counter[i]];
    }
    const double score = evaluate(factory, params, x, y);
    common::log_debug("grid trial ", trials, " score ", score);
    if (score > best.score) best = Trial{params, score};
    ++trials;

    // Increment the mixed-radix counter; stop after the last combination.
    std::size_t axis = 0;
    while (axis < counter.size()) {
      if (++counter[axis] < sizes[axis]) break;
      counter[axis] = 0;
      ++axis;
    }
    if (axis == counter.size()) break;
    if (counter.empty()) break;
  }
  return best;
}

Trial HyperSearch::random_search(
    const ClassifierFactory& factory,
    const std::map<std::string, std::vector<double>>& space, const Matrix& x,
    const std::vector<int>& y, int n_trials) const {
  common::Rng rng(config_.seed ^ 0xABCDEF);
  Trial best;
  best.score = -1.0;
  for (int t = 0; t < std::min(n_trials, config_.max_trials); ++t) {
    ParamAssignment params;
    for (const auto& [name, values] : space) {
      if (values.empty()) throw InvalidArgument("empty axis '" + name + "'");
      params[name] = values[rng.next_below(values.size())];
    }
    const double score = evaluate(factory, params, x, y);
    if (score > best.score) best = Trial{params, score};
  }
  return best;
}

}  // namespace phishinghook::ml
