#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"

namespace phishinghook::ml {

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k < 1) throw InvalidArgument("kNN requires k >= 1");
}

void KnnClassifier::fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw InvalidArgument("kNN::fit size mismatch");
  if (x.rows() == 0) throw InvalidArgument("kNN::fit on empty data");
  train_x_ = x;
  train_y_ = y;
}

double KnnClassifier::distance(std::span<const double> a,
                               std::span<const double> b) const {
  switch (config_.metric) {
    case KnnMetric::kEuclidean: {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
      }
      return std::sqrt(sum);
    }
    case KnnMetric::kManhattan: {
      double sum = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
      return sum;
    }
    case KnnMetric::kCosine: {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
      }
      if (na <= 0.0 || nb <= 0.0) return 1.0;
      return 1.0 - dot / std::sqrt(na * nb);
    }
  }
  return 0.0;
}

std::vector<double> KnnClassifier::predict_proba(const Matrix& x) const {
  if (train_y_.empty()) throw StateError("kNN::predict before fit");
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(config_.k), train_y_.size());

  // Query rows are independent; each chunk owns a private distance scratch.
  std::vector<double> out(x.rows());
  common::parallel_for_chunks(x.rows(), [&](std::size_t begin,
                                            std::size_t end) {
    std::vector<std::pair<double, std::size_t>> dists(train_y_.size());
    for (std::size_t r = begin; r < end; ++r) {
      const auto query = x.row(r);
      for (std::size_t i = 0; i < train_y_.size(); ++i) {
        dists[i] = {distance(query, train_x_.row(i)), i};
      }
      std::partial_sort(dists.begin(),
                        dists.begin() + static_cast<std::ptrdiff_t>(k),
                        dists.end());
      double pos = 0.0, total = 0.0;
      for (std::size_t n = 0; n < k; ++n) {
        const double weight =
            config_.distance_weighted ? 1.0 / (dists[n].first + 1e-9) : 1.0;
        total += weight;
        if (train_y_[dists[n].second] != 0) pos += weight;
      }
      out[r] = total > 0.0 ? pos / total : 0.5;
    }
  });
  return out;
}

}  // namespace phishinghook::ml
