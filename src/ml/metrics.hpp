// Binary-classification metrics: the four columns of the paper's Table II.
//
// Positive class = phishing (label 1) throughout.
#pragma once

#include <cstddef>
#include <vector>

namespace phishinghook::ml {

struct ConfusionMatrix {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
};

ConfusionMatrix confusion(const std::vector<int>& truth,
                          const std::vector<int>& predicted);

/// The Table II metric bundle. Values in [0, 1].
struct Metrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Metrics from a confusion matrix. Degenerate denominators yield 0.
Metrics compute_metrics(const ConfusionMatrix& cm);
Metrics compute_metrics(const std::vector<int>& truth,
                        const std::vector<int>& predicted);

/// Mean of a bundle list (fold averaging).
Metrics mean_metrics(const std::vector<Metrics>& all);

/// Thresholds probabilities at 0.5.
std::vector<int> threshold_predictions(const std::vector<double>& probs,
                                       double threshold = 0.5);

/// Area Under Time (Fig. 8): normalized trapezoidal area under a metric
/// series observed at evenly spaced test periods; in [0, 1] for series in
/// [0, 1] (TESSERACT's AUT with evenly spaced samples).
double area_under_time(const std::vector<double>& series);

}  // namespace phishinghook::ml
