// SHAP values (Lundberg & Lee, NeurIPS 2017) — the interpretability tool
// behind the paper's Fig. 9.
//
// Two estimators:
//  * TreeSHAP — the exact polynomial-time algorithm for tree ensembles
//    (SHAP's own backend for tree models); applied to our Random Forest by
//    averaging per-tree attributions, since the forest's output is the mean
//    of its trees.
//  * Sampling SHAP — a Monte-Carlo permutation estimator usable with any
//    predict function, against a background dataset.
//
// Both satisfy local accuracy: sum(phi) + expected_value == f(x) (exactly
// for TreeSHAP, in expectation for the sampler).
#pragma once

#include <functional>

#include "ml/random_forest.hpp"

namespace phishinghook::ml {

/// Per-feature attributions for one sample.
struct ShapExplanation {
  std::vector<double> values;   ///< phi_i per feature
  double expected_value = 0.0;  ///< E[f] over the training distribution
};

/// Exact TreeSHAP for a single tree (leaf `value`, cover in `weight`).
ShapExplanation tree_shap(const std::vector<TreeNode>& nodes,
                          std::span<const double> x, std::size_t n_features);

/// TreeSHAP for a Random Forest: the mean of the member trees' attributions.
ShapExplanation tree_shap(const RandomForestClassifier& forest,
                          std::span<const double> x);

/// TreeSHAP for every row of `x` against `forest`; returns one explanation
/// per row (the Fig. 9 beeswarm data).
std::vector<ShapExplanation> tree_shap_all(const RandomForestClassifier& forest,
                                           const Matrix& x);

/// Monte-Carlo permutation Shapley for an arbitrary model. `predict` maps a
/// feature row to a scalar output; `background` supplies reference rows.
ShapExplanation sampling_shap(
    const std::function<double(std::span<const double>)>& predict,
    std::span<const double> x, const Matrix& background, int permutations,
    std::uint64_t seed);

}  // namespace phishinghook::ml
