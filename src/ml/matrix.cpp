#include "ml/matrix.hpp"

namespace phishinghook::ml {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix out(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != out.cols_) {
      throw InvalidArgument("ragged rows in Matrix::from_rows");
    }
    for (std::size_t c = 0; c < out.cols_; ++c) out.at(r, c) = rows[r][c];
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const auto src = row(indices[r]);
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = src[c];
  }
  return out;
}

}  // namespace phishinghook::ml
