// Support Vector Machine (HSC category).
//
// Primal hinge-loss solver (Pegasos: stochastic sub-gradient descent with
// the 1/(lambda*t) step schedule). Two feature maps:
//   * linear — on the standardized inputs;
//   * RBF    — approximated with random Fourier features (Rahimi-Recht),
//     which keeps training linear-time while behaving like scikit-learn's
//     RBF-kernel SVC on these histogram features.
// predict_proba applies a Platt-style sigmoid to the margin.
#pragma once

#include <cstdint>

#include "ml/classifier.hpp"

namespace phishinghook::ml {

enum class SvmKernel { kLinear, kRbf };

struct SvmConfig {
  SvmKernel kernel = SvmKernel::kRbf;
  double lambda = 1e-4;       ///< Pegasos regularization
  int epochs = 40;            ///< passes over the data
  double gamma = 0.0;         ///< RBF width; 0 = 0.1/d heuristic
  std::size_t rff_features = 512;  ///< random Fourier feature count
  double platt_scale = 2.0;   ///< margin->probability sharpness
  std::uint64_t seed = 13;
};

class SvmClassifier final : public TabularClassifier {
 public:
  explicit SvmClassifier(SvmConfig config = {});

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "SVM"; }

  /// Signed margin for one (raw) row.
  double decision_function(std::span<const double> row) const;

 private:
  std::vector<double> transform(std::span<const double> row) const;

  SvmConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_, stddev_;
  // RFF projection (kernel == kRbf): z(x) = sqrt(2/D) cos(Wx + b).
  std::vector<std::vector<double>> rff_w_;
  std::vector<double> rff_b_;
};

}  // namespace phishinghook::ml
