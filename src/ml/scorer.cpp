#include "ml/scorer.hpp"

namespace phishinghook::ml {

std::vector<double> Scorer::score_probabilities(const BytecodeBatchView& view) {
  std::vector<ScoredRow> rows(view.size());
  score_batch(view, rows);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const ScoredRow& row : rows) out.push_back(row.probability);
  return out;
}

}  // namespace phishinghook::ml
