// Hyperparameter search (the paper tunes every model with Optuna grid
// search over an arbitrary space, scored by 10-fold cross-validation).
//
// A define-by-run-ish API in miniature: the caller supplies a factory that
// builds a classifier from a named parameter assignment, and a space of
// candidate values per name; the searcher scores each assignment with
// stratified k-fold accuracy and returns the best trial.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "ml/classifier.hpp"
#include "ml/cross_validation.hpp"

namespace phishinghook::ml {

using ParamAssignment = std::map<std::string, double>;
using ClassifierFactory =
    std::function<std::unique_ptr<TabularClassifier>(const ParamAssignment&)>;

struct Trial {
  ParamAssignment params;
  double score = 0.0;  ///< mean CV accuracy
};

struct HyperSearchConfig {
  int folds = 5;
  std::uint64_t seed = 41;
  /// Cap on grid points / random draws (grid search enumerates the full
  /// cartesian product up to this many points).
  int max_trials = 64;
};

class HyperSearch {
 public:
  explicit HyperSearch(HyperSearchConfig config = {}) : config_(config) {}

  /// Mean k-fold accuracy of the classifier the factory builds for `params`.
  double evaluate(const ClassifierFactory& factory,
                  const ParamAssignment& params, const Matrix& x,
                  const std::vector<int>& y) const;

  /// Exhaustive cartesian-product search over `space`.
  Trial grid_search(const ClassifierFactory& factory,
                    const std::map<std::string, std::vector<double>>& space,
                    const Matrix& x, const std::vector<int>& y) const;

  /// Uniform random draws from `space`.
  Trial random_search(const ClassifierFactory& factory,
                      const std::map<std::string, std::vector<double>>& space,
                      const Matrix& x, const std::vector<int>& y,
                      int n_trials) const;

 private:
  HyperSearchConfig config_;
};

}  // namespace phishinghook::ml
