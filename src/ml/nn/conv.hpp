// Convolutional layers for the vision models ([C, H, W] single-sample
// tensors): standard and depthwise 2-D convolutions, global average
// pooling, and the ECA (Efficient Channel Attention) module of
// ECA+EfficientNet.
#pragma once

#include "ml/nn/tensor.hpp"

namespace phishinghook::ml::nn {

struct Conv2dConfig {
  std::size_t in_channels = 3;
  std::size_t out_channels = 8;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
};

class Conv2d {
 public:
  Conv2d() = default;
  Conv2d(Conv2dConfig config, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  std::vector<Param*> params() { return {&weight_, &bias_}; }

  std::size_t out_side(std::size_t in_side) const {
    return (in_side + 2 * config_.padding - config_.kernel) / config_.stride + 1;
  }

 private:
  Conv2dConfig config_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  Tensor cached_input_;
};

/// Depthwise conv: one k x k filter per channel (EfficientNet's MBConv).
class DepthwiseConv2d {
 public:
  DepthwiseConv2d() = default;
  DepthwiseConv2d(std::size_t channels, std::size_t kernel, std::size_t stride,
                  std::size_t padding, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  std::vector<Param*> params() { return {&weight_, &bias_}; }

 private:
  std::size_t channels_ = 0, kernel_ = 0, stride_ = 0, padding_ = 0;
  Param weight_;  // [c, k, k]
  Param bias_;    // [c]
  Tensor cached_input_;
};

/// [C, H, W] -> [1, C]: spatial mean per channel.
class GlobalAvgPool {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out) const;

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Efficient Channel Attention (Wang et al., CVPR 2020): global average
/// pool -> 1-D conv of width `kernel` across the channel axis -> sigmoid ->
/// channel-wise rescale of the input feature map.
class Eca {
 public:
  Eca() = default;
  Eca(std::size_t channels, std::size_t kernel, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  std::vector<Param*> params() { return {&weight_}; }

 private:
  std::size_t channels_ = 0, kernel_ = 0;
  Param weight_;  // [kernel]
  Tensor cached_input_;
  std::vector<float> cached_pool_;  // per-channel means
  std::vector<float> cached_gate_;  // sigmoid outputs
};

}  // namespace phishinghook::ml::nn
