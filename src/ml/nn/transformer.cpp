#include "ml/nn/transformer.hpp"

namespace phishinghook::ml::nn {

FeedForward::FeedForward(std::size_t dim, common::Rng& rng)
    : fc1_(dim, 4 * dim, rng), fc2_(4 * dim, dim, rng) {}

Tensor FeedForward::forward(const Tensor& x) {
  return fc2_.forward(gelu_.forward(fc1_.forward(x)));
}

Tensor FeedForward::backward(const Tensor& grad_out) {
  return fc1_.backward(gelu_.backward(fc2_.backward(grad_out)));
}

std::vector<Param*> FeedForward::params() {
  std::vector<Param*> out;
  for (Param* p : fc1_.params()) out.push_back(p);
  for (Param* p : fc2_.params()) out.push_back(p);
  return out;
}

TransformerBlock::TransformerBlock(AttentionConfig attention, common::Rng& rng)
    : ln1_(attention.dim),
      ln2_(attention.dim),
      attn_(attention, rng),
      ffn_(attention.dim, rng) {}

Tensor TransformerBlock::forward(const Tensor& x) {
  Tensor h = x;
  h.add_(attn_.forward(ln1_.forward(x)));
  Tensor out = h;
  out.add_(ffn_.forward(ln2_.forward(h)));
  return out;
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  // out = h + ffn(ln2(h)); h = x + attn(ln1(x))
  Tensor grad_h = grad_out;
  grad_h.add_(ln2_.backward(ffn_.backward(grad_out)));
  Tensor grad_x = grad_h;
  grad_x.add_(ln1_.backward(attn_.backward(grad_h)));
  return grad_x;
}

std::vector<Param*> TransformerBlock::params() {
  std::vector<Param*> out;
  for (Param* p : ln1_.params()) out.push_back(p);
  for (Param* p : attn_.params()) out.push_back(p);
  for (Param* p : ln2_.params()) out.push_back(p);
  for (Param* p : ffn_.params()) out.push_back(p);
  return out;
}

PositionalEmbedding::PositionalEmbedding(std::size_t max_len, std::size_t dim,
                                         common::Rng& rng)
    : max_len_(max_len),
      dim_(dim),
      weight_(Tensor::randn({max_len, dim}, 0.02F, rng)) {}

Tensor PositionalEmbedding::forward(const Tensor& x) {
  const std::size_t t_len = x.dim(0);
  if (t_len > max_len_) {
    throw InvalidArgument("sequence longer than positional table");
  }
  cached_len_ = t_len;
  Tensor out = x;
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t i = 0; i < dim_; ++i) {
      out.at(t, i) += weight_.value.at(t, i);
    }
  }
  return out;
}

void PositionalEmbedding::backward(const Tensor& grad_out) {
  for (std::size_t t = 0; t < cached_len_; ++t) {
    for (std::size_t i = 0; i < dim_; ++i) {
      weight_.grad.at(t, i) += grad_out.at(t, i);
    }
  }
}

}  // namespace phishinghook::ml::nn
