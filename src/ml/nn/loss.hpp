// Softmax cross-entropy on a logit row, and the Adam optimizer.
#pragma once

#include "ml/nn/tensor.hpp"

namespace phishinghook::ml::nn {

/// Softmax probabilities of a [1, K] (or [K]) logit tensor.
std::vector<float> softmax(const Tensor& logits);

/// Cross-entropy loss and its gradient wrt the logits for integer `target`.
struct LossResult {
  float loss = 0.0F;
  Tensor grad;  // same shape as logits
};

LossResult softmax_cross_entropy(const Tensor& logits, std::size_t target);

struct AdamConfig {
  float learning_rate = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float eps = 1e-8F;
  float weight_decay = 0.0F;
  float clip_norm = 5.0F;  ///< global gradient-norm clip; 0 disables
};

/// Adam over a fixed parameter set.
class AdamOptimizer {
 public:
  AdamOptimizer(std::vector<Param*> params, AdamConfig config = {});

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step();

  void zero_grad();

 private:
  std::vector<Param*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

}  // namespace phishinghook::ml::nn
