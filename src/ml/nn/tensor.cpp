#include "ml/nn/tensor.hpp"

#include <algorithm>
#include <numeric>

namespace phishinghook::ml::nn {

namespace {
std::size_t shape_size(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

Tensor Tensor::randn(std::vector<std::size_t> shape, float scale,
                     common::Rng& rng) {
  Tensor out(std::move(shape));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(rng.normal()) * scale;
  }
  return out;
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  if (shape_size(shape) != data_.size()) {
    throw InvalidArgument("Tensor::reshaped size mismatch");
  }
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

void Tensor::add_(const Tensor& other) {
  if (other.size() != size()) throw InvalidArgument("Tensor::add_ size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float factor) {
  for (float& v : data_) v *= factor;
}

}  // namespace phishinghook::ml::nn
