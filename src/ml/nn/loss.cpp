#include "ml/nn/loss.hpp"

#include <cmath>

namespace phishinghook::ml::nn {

std::vector<float> softmax(const Tensor& logits) {
  std::vector<float> out(logits.size());
  float max_logit = -1e30F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (logits[i] > max_logit) max_logit = logits[i];
  }
  float denom = 0.0F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    denom += out[i];
  }
  for (float& v : out) v /= denom;
  return out;
}

LossResult softmax_cross_entropy(const Tensor& logits, std::size_t target) {
  if (target >= logits.size()) {
    throw InvalidArgument("cross-entropy target out of range");
  }
  const std::vector<float> probs = softmax(logits);
  LossResult result;
  result.loss = -std::log(std::max(probs[target], 1e-12F));
  result.grad = Tensor(logits.shape());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    result.grad[i] = probs[i] - (i == target ? 1.0F : 0.0F);
  }
  return result;
}

AdamOptimizer::AdamOptimizer(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.push_back(Tensor::zeros_like(p->value));
    v_.push_back(Tensor::zeros_like(p->value));
  }
}

void AdamOptimizer::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void AdamOptimizer::step() {
  ++t_;
  // Optional global gradient clipping.
  if (config_.clip_norm > 0.0F) {
    double norm_sq = 0.0;
    for (Param* p : params_) {
      for (std::size_t i = 0; i < p->grad.size(); ++i) {
        norm_sq += static_cast<double>(p->grad[i]) * p->grad[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.clip_norm) {
      const float factor = config_.clip_norm / static_cast<float>(norm);
      for (Param* p : params_) p->grad.scale_(factor);
    }
  }

  const float bc1 = 1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param* p = params_[pi];
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i] + config_.weight_decay * p->value[i];
      m[i] = config_.beta1 * m[i] + (1.0F - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0F - config_.beta2) * g * g;
      p->value[i] -= config_.learning_rate * (m[i] / bc1) /
                     (std::sqrt(v[i] / bc2) + config_.eps);
    }
  }
  zero_grad();
}

}  // namespace phishinghook::ml::nn
