#include "ml/nn/conv.hpp"

#include <cmath>

#include "ml/nn/activations.hpp"

namespace phishinghook::ml::nn {

Conv2d::Conv2d(Conv2dConfig config, common::Rng& rng)
    : config_(config),
      weight_(Tensor::randn(
          {config.out_channels, config.in_channels, config.kernel,
           config.kernel},
          std::sqrt(2.0F / static_cast<float>(config.in_channels *
                                              config.kernel * config.kernel)),
          rng)),
      bias_(Tensor({config.out_channels})) {}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 3 || x.dim(0) != config_.in_channels) {
    throw InvalidArgument("Conv2d::forward expects [in_channels, H, W]");
  }
  cached_input_ = x;
  const std::size_t h_in = x.dim(1), w_in = x.dim(2);
  const std::size_t h_out = out_side(h_in), w_out = out_side(w_in);
  const std::size_t k = config_.kernel;
  Tensor y({config_.out_channels, h_out, w_out});

  for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
    for (std::size_t oh = 0; oh < h_out; ++oh) {
      for (std::size_t ow = 0; ow < w_out; ++ow) {
        float acc = bias_.value[oc];
        for (std::size_t ic = 0; ic < config_.in_channels; ++ic) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh * config_.stride + kh) -
                static_cast<std::ptrdiff_t>(config_.padding);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h_in)) continue;
            for (std::size_t kw = 0; kw < k; ++kw) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow * config_.stride + kw) -
                  static_cast<std::ptrdiff_t>(config_.padding);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w_in)) continue;
              acc += weight_.value[((oc * config_.in_channels + ic) * k + kh) * k + kw] *
                     x.at3(ic, static_cast<std::size_t>(ih),
                           static_cast<std::size_t>(iw));
            }
          }
        }
        y.at3(oc, oh, ow) = acc;
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t h_in = x.dim(1), w_in = x.dim(2);
  const std::size_t h_out = grad_out.dim(1), w_out = grad_out.dim(2);
  const std::size_t k = config_.kernel;
  Tensor grad_in({config_.in_channels, h_in, w_in});

  for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
    for (std::size_t oh = 0; oh < h_out; ++oh) {
      for (std::size_t ow = 0; ow < w_out; ++ow) {
        const float g = grad_out.at3(oc, oh, ow);
        bias_.grad[oc] += g;
        for (std::size_t ic = 0; ic < config_.in_channels; ++ic) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh * config_.stride + kh) -
                static_cast<std::ptrdiff_t>(config_.padding);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h_in)) continue;
            for (std::size_t kw = 0; kw < k; ++kw) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow * config_.stride + kw) -
                  static_cast<std::ptrdiff_t>(config_.padding);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w_in)) continue;
              const std::size_t widx =
                  ((oc * config_.in_channels + ic) * k + kh) * k + kw;
              weight_.grad[widx] +=
                  g * x.at3(ic, static_cast<std::size_t>(ih),
                            static_cast<std::size_t>(iw));
              grad_in.at3(ic, static_cast<std::size_t>(ih),
                          static_cast<std::size_t>(iw)) +=
                  g * weight_.value[widx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

DepthwiseConv2d::DepthwiseConv2d(std::size_t channels, std::size_t kernel,
                                 std::size_t stride, std::size_t padding,
                                 common::Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(Tensor::randn(
          {channels, kernel, kernel},
          std::sqrt(2.0F / static_cast<float>(kernel * kernel)), rng)),
      bias_(Tensor({channels})) {}

Tensor DepthwiseConv2d::forward(const Tensor& x) {
  if (x.rank() != 3 || x.dim(0) != channels_) {
    throw InvalidArgument("DepthwiseConv2d expects [channels, H, W]");
  }
  cached_input_ = x;
  const std::size_t h_in = x.dim(1), w_in = x.dim(2);
  const std::size_t h_out = (h_in + 2 * padding_ - kernel_) / stride_ + 1;
  const std::size_t w_out = (w_in + 2 * padding_ - kernel_) / stride_ + 1;
  Tensor y({channels_, h_out, w_out});

  for (std::size_t c = 0; c < channels_; ++c) {
    for (std::size_t oh = 0; oh < h_out; ++oh) {
      for (std::size_t ow = 0; ow < w_out; ++ow) {
        float acc = bias_.value[c];
        for (std::size_t kh = 0; kh < kernel_; ++kh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * stride_ + kh) -
              static_cast<std::ptrdiff_t>(padding_);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h_in)) continue;
          for (std::size_t kw = 0; kw < kernel_; ++kw) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * stride_ + kw) -
                static_cast<std::ptrdiff_t>(padding_);
            if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w_in)) continue;
            acc += weight_.value[(c * kernel_ + kh) * kernel_ + kw] *
                   x.at3(c, static_cast<std::size_t>(ih),
                         static_cast<std::size_t>(iw));
          }
        }
        y.at3(c, oh, ow) = acc;
      }
    }
  }
  return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t h_in = x.dim(1), w_in = x.dim(2);
  const std::size_t h_out = grad_out.dim(1), w_out = grad_out.dim(2);
  Tensor grad_in({channels_, h_in, w_in});

  for (std::size_t c = 0; c < channels_; ++c) {
    for (std::size_t oh = 0; oh < h_out; ++oh) {
      for (std::size_t ow = 0; ow < w_out; ++ow) {
        const float g = grad_out.at3(c, oh, ow);
        bias_.grad[c] += g;
        for (std::size_t kh = 0; kh < kernel_; ++kh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * stride_ + kh) -
              static_cast<std::ptrdiff_t>(padding_);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h_in)) continue;
          for (std::size_t kw = 0; kw < kernel_; ++kw) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * stride_ + kw) -
                static_cast<std::ptrdiff_t>(padding_);
            if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(w_in)) continue;
            const std::size_t widx = (c * kernel_ + kh) * kernel_ + kw;
            weight_.grad[widx] += g * x.at3(c, static_cast<std::size_t>(ih),
                                            static_cast<std::size_t>(iw));
            grad_in.at3(c, static_cast<std::size_t>(ih),
                        static_cast<std::size_t>(iw)) +=
                g * weight_.value[widx];
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  const std::size_t c = x.dim(0);
  const std::size_t area = x.dim(1) * x.dim(2);
  Tensor y({1, c});
  for (std::size_t ch = 0; ch < c; ++ch) {
    float sum = 0.0F;
    const float* base = x.data() + ch * area;
    for (std::size_t i = 0; i < area; ++i) sum += base[i];
    y.at(0, ch) = sum / static_cast<float>(area);
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) const {
  Tensor grad_in(cached_shape_);
  const std::size_t c = cached_shape_[0];
  const std::size_t area = cached_shape_[1] * cached_shape_[2];
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float g = grad_out.at(0, ch) / static_cast<float>(area);
    float* base = grad_in.data() + ch * area;
    for (std::size_t i = 0; i < area; ++i) base[i] = g;
  }
  return grad_in;
}

Eca::Eca(std::size_t channels, std::size_t kernel, common::Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      weight_(Tensor::randn({kernel},
                            std::sqrt(1.0F / static_cast<float>(kernel)),
                            rng)) {
  if (kernel % 2 == 0) throw InvalidArgument("ECA kernel must be odd");
}

Tensor Eca::forward(const Tensor& x) {
  cached_input_ = x;
  const std::size_t area = x.dim(1) * x.dim(2);
  cached_pool_.assign(channels_, 0.0F);
  for (std::size_t c = 0; c < channels_; ++c) {
    const float* base = x.data() + c * area;
    float sum = 0.0F;
    for (std::size_t i = 0; i < area; ++i) sum += base[i];
    cached_pool_[c] = sum / static_cast<float>(area);
  }
  // 1-D conv across the channel axis (zero padded), then sigmoid.
  cached_gate_.assign(channels_, 0.0F);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kernel_ / 2);
  for (std::size_t c = 0; c < channels_; ++c) {
    float acc = 0.0F;
    for (std::size_t k = 0; k < kernel_; ++k) {
      const std::ptrdiff_t src =
          static_cast<std::ptrdiff_t>(c) + static_cast<std::ptrdiff_t>(k) - half;
      if (src < 0 || src >= static_cast<std::ptrdiff_t>(channels_)) continue;
      acc += weight_.value[k] * cached_pool_[static_cast<std::size_t>(src)];
    }
    cached_gate_[c] = sigmoidf(acc);
  }
  Tensor y = x;
  for (std::size_t c = 0; c < channels_; ++c) {
    float* base = y.data() + c * area;
    for (std::size_t i = 0; i < area; ++i) base[i] *= cached_gate_[c];
  }
  return y;
}

Tensor Eca::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t area = x.dim(1) * x.dim(2);
  Tensor grad_in = grad_out;
  std::vector<float> grad_gate(channels_, 0.0F);
  for (std::size_t c = 0; c < channels_; ++c) {
    const float* go = grad_out.data() + c * area;
    const float* base = x.data() + c * area;
    float* gi = grad_in.data() + c * area;
    float acc = 0.0F;
    for (std::size_t i = 0; i < area; ++i) {
      acc += go[i] * base[i];
      gi[i] = go[i] * cached_gate_[c];
    }
    grad_gate[c] = acc;
  }
  // Through the sigmoid and the 1-D conv back to pooled means and weights.
  std::vector<float> grad_pool(channels_, 0.0F);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kernel_ / 2);
  for (std::size_t c = 0; c < channels_; ++c) {
    const float s = cached_gate_[c];
    const float g_pre = grad_gate[c] * s * (1.0F - s);
    for (std::size_t k = 0; k < kernel_; ++k) {
      const std::ptrdiff_t src =
          static_cast<std::ptrdiff_t>(c) + static_cast<std::ptrdiff_t>(k) - half;
      if (src < 0 || src >= static_cast<std::ptrdiff_t>(channels_)) continue;
      weight_.grad[k] += g_pre * cached_pool_[static_cast<std::size_t>(src)];
      grad_pool[static_cast<std::size_t>(src)] += g_pre * weight_.value[k];
    }
  }
  // Pooled means back to the feature map.
  for (std::size_t c = 0; c < channels_; ++c) {
    const float g = grad_pool[c] / static_cast<float>(area);
    float* gi = grad_in.data() + c * area;
    for (std::size_t i = 0; i < area; ++i) gi[i] += g;
  }
  return grad_in;
}

}  // namespace phishinghook::ml::nn
