#include "ml/nn/gru.hpp"

#include <cmath>

#include "ml/nn/activations.hpp"

namespace phishinghook::ml::nn {

Gru::Gru(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      w_(Tensor::randn({3 * hidden_dim, input_dim},
                       std::sqrt(1.0F / static_cast<float>(input_dim)), rng)),
      u_(Tensor::randn({3 * hidden_dim, hidden_dim},
                       std::sqrt(1.0F / static_cast<float>(hidden_dim)), rng)),
      b_(Tensor({3 * hidden_dim})) {}

std::vector<Param*> Gru::params() { return {&w_, &u_, &b_}; }

Tensor Gru::forward(const Tensor& x) {
  const std::size_t t_len = x.dim(0);
  cached_x_ = x;
  cached_h_ = Tensor({t_len + 1, hidden_});
  cached_z_ = Tensor({t_len, hidden_});
  cached_r_ = Tensor({t_len, hidden_});
  cached_n_ = Tensor({t_len, hidden_});
  cached_un_ = Tensor({t_len, hidden_});

  std::vector<float> gates(3 * hidden_);
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* xt = x.data() + t * input_;
    const float* h_prev = cached_h_.data() + t * hidden_;
    // gates = W x_t + b; plus U h_{t-1} for z and r rows; U_n h kept apart.
    for (std::size_t g = 0; g < 3 * hidden_; ++g) {
      float acc = b_.value[g];
      const float* w_row = w_.value.data() + g * input_;
      for (std::size_t i = 0; i < input_; ++i) acc += w_row[i] * xt[i];
      gates[g] = acc;
    }
    for (std::size_t j = 0; j < hidden_; ++j) {
      float uz = 0.0F, ur = 0.0F, un = 0.0F;
      const float* uz_row = u_.value.data() + j * hidden_;
      const float* ur_row = u_.value.data() + (hidden_ + j) * hidden_;
      const float* un_row = u_.value.data() + (2 * hidden_ + j) * hidden_;
      for (std::size_t i = 0; i < hidden_; ++i) {
        uz += uz_row[i] * h_prev[i];
        ur += ur_row[i] * h_prev[i];
        un += un_row[i] * h_prev[i];
      }
      const float z = sigmoidf(gates[j] + uz);
      const float r = sigmoidf(gates[hidden_ + j] + ur);
      const float n = std::tanh(gates[2 * hidden_ + j] + r * un);
      cached_z_.at(t, j) = z;
      cached_r_.at(t, j) = r;
      cached_n_.at(t, j) = n;
      cached_un_.at(t, j) = un;
      cached_h_.at(t + 1, j) = (1.0F - z) * n + z * h_prev[j];
    }
  }
  // Return h_1..h_T as [T, H].
  Tensor out({t_len, hidden_});
  std::copy(cached_h_.data() + hidden_, cached_h_.data() + (t_len + 1) * hidden_,
            out.data());
  return out;
}

Tensor Gru::backward(const Tensor& grad_out) {
  const std::size_t t_len = cached_x_.dim(0);
  Tensor grad_x({t_len, input_});
  std::vector<float> grad_h(hidden_, 0.0F);        // dL/dh_t (accumulated)
  std::vector<float> grad_h_prev(hidden_, 0.0F);

  for (std::size_t t = t_len; t-- > 0;) {
    const float* h_prev = cached_h_.data() + t * hidden_;
    for (std::size_t j = 0; j < hidden_; ++j) {
      grad_h[j] += grad_out.at(t, j);
    }
    std::fill(grad_h_prev.begin(), grad_h_prev.end(), 0.0F);

    for (std::size_t j = 0; j < hidden_; ++j) {
      const float z = cached_z_.at(t, j);
      const float r = cached_r_.at(t, j);
      const float n = cached_n_.at(t, j);
      const float un = cached_un_.at(t, j);
      const float gh = grad_h[j];

      const float dn = gh * (1.0F - z);
      const float dz = gh * (h_prev[j] - n);
      grad_h_prev[j] += gh * z;

      const float dn_pre = dn * (1.0F - n * n);       // tanh'
      const float dr = dn_pre * un;
      const float dun = dn_pre * r;
      const float dz_pre = dz * z * (1.0F - z);       // sigmoid'
      const float dr_pre = dr * r * (1.0F - r);

      // Parameter grads + input grads + h_prev grads for each gate row.
      const float pre[3] = {dz_pre, dr_pre, dn_pre};
      for (int gate = 0; gate < 3; ++gate) {
        const std::size_t row = static_cast<std::size_t>(gate) * hidden_ + j;
        const float g = pre[gate];
        b_.grad[row] += g;
        float* wg = w_.grad.data() + row * input_;
        const float* xt = cached_x_.data() + t * input_;
        const float* w_row = w_.value.data() + row * input_;
        float* gx = grad_x.data() + t * input_;
        for (std::size_t i = 0; i < input_; ++i) {
          wg[i] += g * xt[i];
          gx[i] += g * w_row[i];
        }
        // U-grad: z,r gates use full U h_prev; n gate's U-product was
        // computed pre-r-gate, so its upstream is dun, not dn_pre.
        const float gu = gate == 2 ? dun : g;
        float* ug = u_.grad.data() + row * hidden_;
        const float* u_row = u_.value.data() + row * hidden_;
        for (std::size_t i = 0; i < hidden_; ++i) {
          ug[i] += gu * h_prev[i];
          grad_h_prev[i] += gu * u_row[i];
        }
      }
    }
    grad_h = grad_h_prev;
  }
  return grad_x;
}

}  // namespace phishinghook::ml::nn
