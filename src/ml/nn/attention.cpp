#include "ml/nn/attention.hpp"

#include <cmath>

namespace phishinghook::ml::nn {

MultiHeadAttention::MultiHeadAttention(AttentionConfig config, common::Rng& rng)
    : config_(config),
      head_dim_(config.dim / config.heads),
      qkv_(config.dim, 3 * config.dim, rng),
      proj_(config.dim, config.dim, rng) {
  if (config_.dim % config_.heads != 0) {
    throw InvalidArgument("attention dim must be divisible by heads");
  }
  if (config_.max_rel_distance > 0) {
    rel_bias_ = Param(Tensor(
        {config_.heads,
         static_cast<std::size_t>(2 * config_.max_rel_distance + 1)}));
  }
}

std::vector<Param*> MultiHeadAttention::params() {
  std::vector<Param*> out;
  for (Param* p : qkv_.params()) out.push_back(p);
  for (Param* p : proj_.params()) out.push_back(p);
  if (config_.max_rel_distance > 0) out.push_back(&rel_bias_);
  return out;
}

std::size_t MultiHeadAttention::rel_bucket(std::size_t i, std::size_t j) const {
  const int d = static_cast<int>(j) - static_cast<int>(i);
  const int clipped =
      std::max(-config_.max_rel_distance, std::min(config_.max_rel_distance, d));
  return static_cast<std::size_t>(clipped + config_.max_rel_distance);
}

float MultiHeadAttention::rel_bias(std::size_t head, std::size_t i,
                                   std::size_t j) const {
  if (config_.max_rel_distance <= 0) return 0.0F;
  return rel_bias_.value.at(head, rel_bucket(i, j));
}

Tensor MultiHeadAttention::forward(const Tensor& x) {
  const std::size_t t_len = x.dim(0);
  const std::size_t dim = config_.dim;
  cached_qkv_ = qkv_.forward(x);  // [T, 3D]

  cached_attn_ = Tensor({config_.heads * t_len, t_len});
  Tensor context({t_len, dim});
  const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));

  for (std::size_t h = 0; h < config_.heads; ++h) {
    const std::size_t q_off = h * head_dim_;
    const std::size_t k_off = dim + h * head_dim_;
    const std::size_t v_off = 2 * dim + h * head_dim_;

    for (std::size_t i = 0; i < t_len; ++i) {
      float* attn_row = cached_attn_.data() + (h * t_len + i) * t_len;
      const std::size_t limit = config_.causal ? i + 1 : t_len;
      float max_score = -1e30F;
      for (std::size_t j = 0; j < limit; ++j) {
        float score = 0.0F;
        const float* q = cached_qkv_.data() + i * 3 * dim + q_off;
        const float* k = cached_qkv_.data() + j * 3 * dim + k_off;
        for (std::size_t c = 0; c < head_dim_; ++c) score += q[c] * k[c];
        score = score * scale + rel_bias(h, i, j);
        attn_row[j] = score;
        if (score > max_score) max_score = score;
      }
      float denom = 0.0F;
      for (std::size_t j = 0; j < limit; ++j) {
        attn_row[j] = std::exp(attn_row[j] - max_score);
        denom += attn_row[j];
      }
      for (std::size_t j = 0; j < limit; ++j) attn_row[j] /= denom;
      for (std::size_t j = limit; j < t_len; ++j) attn_row[j] = 0.0F;

      float* ctx = context.data() + i * dim + h * head_dim_;
      for (std::size_t j = 0; j < limit; ++j) {
        const float w = attn_row[j];
        const float* v = cached_qkv_.data() + j * 3 * dim + v_off;
        for (std::size_t c = 0; c < head_dim_; ++c) ctx[c] += w * v[c];
      }
    }
  }
  return proj_.forward(context);
}

Tensor MultiHeadAttention::backward(const Tensor& grad_out) {
  const Tensor grad_context = proj_.backward(grad_out);  // [T, D]
  const std::size_t t_len = grad_context.dim(0);
  const std::size_t dim = config_.dim;
  const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));

  Tensor grad_qkv({t_len, 3 * dim});

  for (std::size_t h = 0; h < config_.heads; ++h) {
    const std::size_t q_off = h * head_dim_;
    const std::size_t k_off = dim + h * head_dim_;
    const std::size_t v_off = 2 * dim + h * head_dim_;

    for (std::size_t i = 0; i < t_len; ++i) {
      const float* attn_row = cached_attn_.data() + (h * t_len + i) * t_len;
      const float* g_ctx = grad_context.data() + i * dim + h * head_dim_;
      const std::size_t limit = config_.causal ? i + 1 : t_len;

      // grad wrt attention weights, and V accumulation.
      float dot_sum = 0.0F;  // sum_j attn_j * g_attn_j (softmax backward)
      std::vector<float> g_attn(limit);
      for (std::size_t j = 0; j < limit; ++j) {
        const float* v = cached_qkv_.data() + j * 3 * dim + v_off;
        float g = 0.0F;
        for (std::size_t c = 0; c < head_dim_; ++c) g += g_ctx[c] * v[c];
        g_attn[j] = g;
        dot_sum += attn_row[j] * g;
        // dV
        float* gv = grad_qkv.data() + j * 3 * dim + v_off;
        for (std::size_t c = 0; c < head_dim_; ++c) {
          gv[c] += attn_row[j] * g_ctx[c];
        }
      }
      // softmax backward -> score grads -> Q/K/bias grads.
      const float* q = cached_qkv_.data() + i * 3 * dim + q_off;
      float* gq = grad_qkv.data() + i * 3 * dim + q_off;
      for (std::size_t j = 0; j < limit; ++j) {
        const float g_score = attn_row[j] * (g_attn[j] - dot_sum);
        const float* k = cached_qkv_.data() + j * 3 * dim + k_off;
        float* gk = grad_qkv.data() + j * 3 * dim + k_off;
        for (std::size_t c = 0; c < head_dim_; ++c) {
          gq[c] += g_score * scale * k[c];
          gk[c] += g_score * scale * q[c];
        }
        if (config_.max_rel_distance > 0) {
          rel_bias_.grad.at(h, rel_bucket(i, j)) += g_score;
        }
      }
    }
  }
  return qkv_.backward(grad_qkv);
}

}  // namespace phishinghook::ml::nn
