// Gated Recurrent Unit over a [T, D] sequence (SCSGuard's sequence model).
//
// Standard GRU cell:
//   z_t = sigmoid(W_z x_t + U_z h_{t-1} + b_z)
//   r_t = sigmoid(W_r x_t + U_r h_{t-1} + b_r)
//   n_t = tanh   (W_n x_t + r_t * (U_n h_{t-1}) + b_n)
//   h_t = (1 - z_t) * n_t + z_t * h_{t-1}
// Full backpropagation through time.
#pragma once

#include "ml/nn/linear.hpp"

namespace phishinghook::ml::nn {

class Gru {
 public:
  Gru() = default;
  Gru(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng);

  /// Returns all hidden states [T, H]; the caller typically uses the last
  /// row as the sequence summary.
  Tensor forward(const Tensor& x);

  /// grad_out is [T, H] (zero rows where the loss does not touch h_t).
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params();
  std::size_t hidden_dim() const { return hidden_; }

 private:
  std::size_t input_ = 0, hidden_ = 0;
  Param w_;  // [3H, D]  (z, r, n rows)
  Param u_;  // [3H, H]
  Param b_;  // [3H]

  // forward caches
  Tensor cached_x_;       // [T, D]
  Tensor cached_h_;       // [T+1, H] with h_0 = 0 in row 0
  Tensor cached_z_, cached_r_, cached_n_;  // [T, H]
  Tensor cached_un_;      // [T, H]: U_n h_{t-1} (pre r-gate)
};

}  // namespace phishinghook::ml::nn
