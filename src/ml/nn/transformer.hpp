// Transformer building blocks: position-wise FFN and the pre-LN block
// (x += Attn(LN(x)); x += FFN(LN(x))) shared by GPT-2, T5 and ViT.
#pragma once

#include "ml/nn/activations.hpp"
#include "ml/nn/attention.hpp"

namespace phishinghook::ml::nn {

/// Linear(dim -> 4 dim) -> GELU -> Linear(4 dim -> dim).
class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(std::size_t dim, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  std::vector<Param*> params();

 private:
  Linear fc1_, fc2_;
  Gelu gelu_;
};

/// Pre-LayerNorm transformer block with residual connections.
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(AttentionConfig attention, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  std::vector<Param*> params();

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadAttention attn_;
  FeedForward ffn_;
};

/// Learned absolute positional embeddings added to a [T, D] sequence
/// (GPT-2 / ViT style; T5 relies on the attention's relative bias instead).
class PositionalEmbedding {
 public:
  PositionalEmbedding() = default;
  PositionalEmbedding(std::size_t max_len, std::size_t dim, common::Rng& rng);

  Tensor forward(const Tensor& x);
  void backward(const Tensor& grad_out);
  std::vector<Param*> params() { return {&weight_}; }

 private:
  std::size_t max_len_ = 0, dim_ = 0;
  Param weight_;  // [max_len, dim]
  std::size_t cached_len_ = 0;
};

}  // namespace phishinghook::ml::nn
