// Stateless activations with explicit backward helpers.
#pragma once

#include "ml/nn/tensor.hpp"

namespace phishinghook::ml::nn {

/// Caches the forward input so backward can gate the gradient.
class ReLU {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out) const;

 private:
  Tensor cached_input_;
};

/// tanh-approximation GELU (the transformer default).
class Gelu {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out) const;

 private:
  Tensor cached_input_;
};

/// SiLU / swish (EfficientNet's activation).
class Silu {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out) const;

 private:
  Tensor cached_input_;
};

float sigmoidf(float x);

}  // namespace phishinghook::ml::nn
