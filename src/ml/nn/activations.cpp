#include "ml/nn/activations.hpp"

#include <cmath>

namespace phishinghook::ml::nn {

float sigmoidf(float x) {
  if (x >= 0.0F) return 1.0F / (1.0F + std::exp(-x));
  const float e = std::exp(x);
  return e / (1.0F + e);
}

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0F) y[i] = 0.0F;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) const {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (cached_input_[i] <= 0.0F) grad_in[i] = 0.0F;
  }
  return grad_in;
}

namespace {
constexpr float kGeluC = 0.7978845608F;  // sqrt(2/pi)
}

Tensor Gelu::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float v = x[i];
    y[i] = 0.5F * v * (1.0F + std::tanh(kGeluC * (v + 0.044715F * v * v * v)));
  }
  return y;
}

Tensor Gelu::backward(const Tensor& grad_out) const {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    const float v = cached_input_[i];
    const float u = kGeluC * (v + 0.044715F * v * v * v);
    const float th = std::tanh(u);
    const float du = kGeluC * (1.0F + 3.0F * 0.044715F * v * v);
    const float deriv = 0.5F * (1.0F + th) + 0.5F * v * (1.0F - th * th) * du;
    grad_in[i] *= deriv;
  }
  return grad_in;
}

Tensor Silu::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = x[i] * sigmoidf(x[i]);
  }
  return y;
}

Tensor Silu::backward(const Tensor& grad_out) const {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    const float s = sigmoidf(cached_input_[i]);
    grad_in[i] *= s * (1.0F + cached_input_[i] * (1.0F - s));
  }
  return grad_in;
}

}  // namespace phishinghook::ml::nn
