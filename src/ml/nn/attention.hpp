// Multi-head self-attention over a [T, D] sequence.
//
// One implementation serves all four attention consumers:
//   * SCSGuard         — bidirectional, no bias;
//   * GPT-2 blocks     — causal mask;
//   * T5 blocks        — bidirectional + learned relative-position bias
//                        (clipped-distance buckets, one bias per head);
//   * ViT blocks       — bidirectional over patch tokens.
#pragma once

#include "ml/nn/linear.hpp"

namespace phishinghook::ml::nn {

struct AttentionConfig {
  std::size_t dim = 64;
  std::size_t heads = 4;
  bool causal = false;
  /// 0 disables relative position bias; otherwise distances are clipped to
  /// [-max_rel_distance, max_rel_distance] and each bucket gets a learned
  /// per-head bias (the T5 mechanism, simplified to linear buckets).
  int max_rel_distance = 0;
};

class MultiHeadAttention {
 public:
  MultiHeadAttention() = default;
  MultiHeadAttention(AttentionConfig config, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params();

 private:
  float rel_bias(std::size_t head, std::size_t i, std::size_t j) const;
  std::size_t rel_bucket(std::size_t i, std::size_t j) const;

  AttentionConfig config_;
  std::size_t head_dim_ = 0;
  Linear qkv_;    // [D] -> [3D]
  Linear proj_;   // [D] -> [D]
  Param rel_bias_;  // [heads, 2*max_rel+1] when enabled

  // forward caches
  Tensor cached_qkv_;   // [T, 3D]
  Tensor cached_attn_;  // [heads*T, T] softmax weights
};

}  // namespace phishinghook::ml::nn
