// Minimal dense float tensor for the neural models.
//
// The NN layer implements explicit forward/backward per layer (no taped
// autograd); Tensor is deliberately small: flat float storage plus a shape,
// with 2-D ([rows, cols]) and 3-D ([channels, height, width]) accessors.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace phishinghook::ml::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0F);

  static Tensor zeros_like(const Tensor& other) {
    return Tensor(other.shape());
  }

  /// He/Glorot-style init: N(0, scale).
  static Tensor randn(std::vector<std::size_t> shape, float scale,
                      common::Rng& rng);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t rank() const { return shape_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessors ([rows, cols]).
  float& at(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  float at(std::size_t r, std::size_t c) const {
    return data_[r * shape_[1] + c];
  }

  /// 3-D accessors ([c, h, w]).
  float& at3(std::size_t c, std::size_t h, std::size_t w) {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }
  float at3(std::size_t c, std::size_t h, std::size_t w) const {
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reinterprets the flat data under a new shape of equal size.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  /// Element-wise += (shapes must match).
  void add_(const Tensor& other);
  /// Element-wise scale.
  void scale_(float factor);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// A trainable parameter: value + accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(Tensor::zeros_like(value)) {}
  Param() = default;

  void zero_grad() { grad.fill(0.0F); }
};

}  // namespace phishinghook::ml::nn
