// Core dense layers: Linear, Embedding, LayerNorm.
//
// Layers follow one contract: forward(x) caches what backward needs;
// backward(grad_out) accumulates parameter gradients and returns grad_in.
// Sequence inputs are [T, D] (single sample; minibatches accumulate grads
// across samples before the optimizer step).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/nn/tensor.hpp"

namespace phishinghook::ml::nn {

/// y = x W^T + b, applied row-wise on [T, in] -> [T, out].
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, common::Rng& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params() { return {&weight_, &bias_}; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_ = 0, out_ = 0;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_input_;
};

/// Token embedding: ids [T] -> [T, D].
class Embedding {
 public:
  Embedding() = default;
  Embedding(std::size_t vocab, std::size_t dim, common::Rng& rng);

  Tensor forward(const std::vector<std::size_t>& ids);
  void backward(const Tensor& grad_out);

  std::vector<Param*> params() { return {&weight_}; }
  std::size_t dim() const { return dim_; }
  std::size_t vocab() const { return vocab_; }

 private:
  std::size_t vocab_ = 0, dim_ = 0;
  Param weight_;  // [vocab, dim]
  std::vector<std::size_t> cached_ids_;
};

/// LayerNorm over the last dimension of [T, D].
class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(std::size_t dim);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  std::vector<Param*> params() { return {&gamma_, &beta_}; }

 private:
  std::size_t dim_ = 0;
  Param gamma_, beta_;
  Tensor cached_norm_;           // normalized activations
  std::vector<float> cached_inv_std_;
};

}  // namespace phishinghook::ml::nn
