#include "ml/nn/linear.hpp"

#include <cmath>

namespace phishinghook::ml::nn {

Linear::Linear(std::size_t in, std::size_t out, common::Rng& rng)
    : in_(in),
      out_(out),
      weight_(Tensor::randn({out, in},
                            std::sqrt(2.0F / static_cast<float>(in)), rng)),
      bias_(Tensor({out})) {}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw InvalidArgument("Linear::forward expects [T, in]");
  }
  cached_input_ = x;
  const std::size_t t_len = x.dim(0);
  Tensor y({t_len, out_});
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t o = 0; o < out_; ++o) {
      float acc = bias_.value[o];
      const float* w = weight_.value.data() + o * in_;
      const float* xin = x.data() + t * in_;
      for (std::size_t i = 0; i < in_; ++i) acc += w[i] * xin[i];
      y.at(t, o) = acc;
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t t_len = cached_input_.dim(0);
  Tensor grad_in({t_len, in_});
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* go = grad_out.data() + t * out_;
    const float* xin = cached_input_.data() + t * in_;
    float* gi = grad_in.data() + t * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = go[o];
      bias_.grad[o] += g;
      float* wg = weight_.grad.data() + o * in_;
      const float* w = weight_.value.data() + o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        wg[i] += g * xin[i];
        gi[i] += g * w[i];
      }
    }
  }
  return grad_in;
}

Embedding::Embedding(std::size_t vocab, std::size_t dim, common::Rng& rng)
    : vocab_(vocab),
      dim_(dim),
      weight_(Tensor::randn({vocab, dim}, 0.02F, rng)) {}

Tensor Embedding::forward(const std::vector<std::size_t>& ids) {
  cached_ids_ = ids;
  Tensor out({ids.size(), dim_});
  for (std::size_t t = 0; t < ids.size(); ++t) {
    if (ids[t] >= vocab_) throw InvalidArgument("Embedding id out of range");
    const float* row = weight_.value.data() + ids[t] * dim_;
    float* dst = out.data() + t * dim_;
    std::copy(row, row + dim_, dst);
  }
  return out;
}

void Embedding::backward(const Tensor& grad_out) {
  for (std::size_t t = 0; t < cached_ids_.size(); ++t) {
    float* wg = weight_.grad.data() + cached_ids_[t] * dim_;
    const float* go = grad_out.data() + t * dim_;
    for (std::size_t i = 0; i < dim_; ++i) wg[i] += go[i];
  }
}

LayerNorm::LayerNorm(std::size_t dim)
    : dim_(dim), gamma_(Tensor({dim}, 1.0F)), beta_(Tensor({dim})) {}

Tensor LayerNorm::forward(const Tensor& x) {
  const std::size_t t_len = x.dim(0);
  cached_norm_ = Tensor({t_len, dim_});
  cached_inv_std_.assign(t_len, 0.0F);
  Tensor y({t_len, dim_});
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* row = x.data() + t * dim_;
    float mean = 0.0F;
    for (std::size_t i = 0; i < dim_; ++i) mean += row[i];
    mean /= static_cast<float>(dim_);
    float var = 0.0F;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float d = row[i] - mean;
      var += d * d;
    }
    var /= static_cast<float>(dim_);
    const float inv_std = 1.0F / std::sqrt(var + 1e-5F);
    cached_inv_std_[t] = inv_std;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float norm = (row[i] - mean) * inv_std;
      cached_norm_.at(t, i) = norm;
      y.at(t, i) = norm * gamma_.value[i] + beta_.value[i];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::size_t t_len = grad_out.dim(0);
  Tensor grad_in({t_len, dim_});
  const float inv_n = 1.0F / static_cast<float>(dim_);
  for (std::size_t t = 0; t < t_len; ++t) {
    // d/dx of layernorm: gamma-scaled grad, centered and de-projected.
    float sum_g = 0.0F;
    float sum_gn = 0.0F;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float g = grad_out.at(t, i) * gamma_.value[i];
      sum_g += g;
      sum_gn += g * cached_norm_.at(t, i);
      gamma_.grad[i] += grad_out.at(t, i) * cached_norm_.at(t, i);
      beta_.grad[i] += grad_out.at(t, i);
    }
    for (std::size_t i = 0; i < dim_; ++i) {
      const float g = grad_out.at(t, i) * gamma_.value[i];
      grad_in.at(t, i) = cached_inv_std_[t] *
                         (g - inv_n * sum_g - cached_norm_.at(t, i) * inv_n * sum_gn);
    }
  }
  return grad_in;
}

}  // namespace phishinghook::ml::nn
