// Simulated Ethereum chain: blocks, deployments, and the contract registry
// the data-gathering phase crawls.
//
// Stands in for the Google BigQuery public dataset of the paper's Fig. 1-1:
// it records every contract deployment with its block number and timestamp
// so the dataset builder can enumerate "contracts deployed between October
// 2023 and October 2024" exactly as the paper does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chain/state.hpp"

namespace phishinghook::chain {

/// Calendar month within the study window. Index 0 = 2023-10 (the paper's
/// window runs through 2024-10, index 12).
struct Month {
  int index = 0;

  static constexpr int kCount = 13;  // 2023-10 .. 2024-10 inclusive

  /// "2023-10", "2024-03", ...
  std::string label() const;

  /// First-of-month unix timestamp (UTC, approximate 30.44-day months are
  /// not used — real month lengths are).
  std::uint64_t start_timestamp() const;

  friend bool operator==(const Month&, const Month&) = default;
  friend auto operator<=>(const Month&, const Month&) = default;
};

/// One deployment record, as the public dataset would expose it.
struct ContractRecord {
  Address address;
  Address deployer;
  std::uint64_t block_number = 0;
  std::uint64_t timestamp = 0;
  Month month;
  evm::Hash256 code_hash{};
};

/// The chain: world state plus the deployment journal.
class ChainStore {
 public:
  /// `genesis_timestamp` defaults to the start of the study window.
  ChainStore();

  State& state() { return state_; }
  const State& state() const { return state_; }

  /// Advances the chain head into `month` (blocks are appended with evenly
  /// spread timestamps; ~12 s slots are simulated coarsely).
  void advance_to(Month month);

  /// Mines `slots` empty blocks at the head (~12 s each), rolling the
  /// calendar month forward when a slot crosses a month boundary (the head
  /// month saturates at the end of the study window). This is the streaming
  /// producer primitive: the block-follower pipeline keeps calling it (via
  /// synth::ChainMiner) so the chain advances continuously instead of the
  /// batch advance_to() jumps. Returns the new head block number.
  std::uint64_t mine_next_block(std::uint64_t slots = 1);

  /// Deploys runtime code directly (the registry path used for corpus
  /// generation), stamping the current head block/month.
  const ContractRecord& register_contract(const Address& deployer,
                                          Bytecode runtime_code);

  /// Deploys through a real init frame on the interpreter; stamps the head.
  const ContractRecord& deploy_contract(const Address& deployer,
                                        std::span<const std::uint8_t> init_code);

  std::uint64_t head_block() const { return head_block_; }
  std::uint64_t head_timestamp() const { return head_timestamp_; }
  Month head_month() const { return head_month_; }

  /// All deployments, in chain order.
  const std::vector<ContractRecord>& contracts() const { return records_; }

  /// Record lookup by address.
  const ContractRecord* find(const Address& address) const;

  /// Deployments within [from, to] months inclusive — the crawl primitive.
  std::vector<const ContractRecord*> contracts_between(Month from,
                                                       Month to) const;

  /// Deployments strictly after `block`, in chain order — the incremental
  /// crawl primitive a streaming follower tails. Returns copies so the
  /// caller can release any synchronization before processing them.
  std::vector<ContractRecord> contracts_after(std::uint64_t block) const;

 private:
  const ContractRecord& record_deployment(const Address& deployer,
                                          const Address& address);

  State state_;
  std::vector<ContractRecord> records_;
  std::uint64_t head_block_;
  std::uint64_t head_timestamp_;
  Month head_month_;
};

}  // namespace phishinghook::chain
