// World state: the account trie of the simulated Ethereum chain.
//
// Implements the interpreter's Host interface, including nested message
// calls (which re-enter the interpreter) and transactional semantics: every
// call frame snapshots state, and a revert/failure in the callee rolls back
// exactly that frame's writes — the behaviour the paper's phishing patterns
// (approval sweeps behind a dispatcher) rely on.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "evm/address.hpp"
#include "evm/bytecode.hpp"
#include "evm/host.hpp"
#include "evm/interpreter.hpp"
#include "evm/uint256.hpp"

namespace phishinghook::chain {

using evm::Address;
using evm::Bytecode;
using evm::U256;

/// Hash functor so U256 can key the storage map.
struct U256Hash {
  std::size_t operator()(const U256& value) const {
    const auto& limbs = value.limbs();
    std::size_t h = 0x9E3779B97F4A7C15ULL;
    for (std::uint64_t limb : limbs) {
      h ^= limb + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct Account {
  U256 balance;
  std::uint64_t nonce = 0;
  Bytecode code;
  std::unordered_map<U256, U256, U256Hash> storage;
};

class State final : public evm::Host {
 public:
  State() = default;

  // --- account management ---------------------------------------------------
  /// Creates (or returns) the account at `address`.
  Account& touch(const Address& address);
  const Account* find(const Address& address) const;
  void set_balance(const Address& address, const U256& balance);
  void set_code(const Address& address, Bytecode code);
  std::uint64_t increment_nonce(const Address& address);
  std::size_t account_count() const { return accounts_.size(); }

  /// Sets the block context used for subsequent executions.
  void set_block(const evm::BlockContext& block) { block_ = block; }
  const evm::BlockContext& block() const { return block_; }

  /// Attaches an execution-trace observer; propagated into every nested
  /// call/create frame executed through this state (nullptr detaches).
  void set_trace(evm::TraceSink* sink) { trace_ = sink; }

  /// Executes a top-level transaction against `message.code_address`'s code.
  /// Value transfer, nonce bump and state rollback on failure included.
  evm::ExecutionResult execute_transaction(const evm::Message& message);

  /// Deploys `init_code` as a contract from `creator` (a top-level CREATE).
  /// Returns the new contract address; throws StateError if the init frame
  /// fails.
  Address deploy(const Address& creator, std::span<const std::uint8_t> init_code,
                 const U256& endowment = U256());

  /// Installs runtime code directly at a derived address, bypassing the init
  /// frame. Used by the dataset builder for corpora too large to deploy one
  /// by one through the interpreter.
  Address install_code(const Address& creator, Bytecode runtime_code);

  /// Logs emitted since construction (appended across transactions).
  const std::vector<evm::LogEntry>& logs() const { return logs_; }

  // --- Host interface ------------------------------------------------------
  U256 get_balance(const Address& account) override;
  Bytecode get_code(const Address& account) override;
  U256 sload(const Address& account, const U256& key) override;
  void sstore(const Address& account, const U256& key,
              const U256& value) override;
  bool transfer(const Address& from, const Address& to,
                const U256& value) override;
  void emit_log(evm::LogEntry entry) override;
  evm::ExecutionResult call(const evm::Message& message, evm::CallKind kind,
                            int depth) override;
  std::optional<Address> create(const Address& creator, const U256& value,
                                std::span<const std::uint8_t> init_code,
                                std::optional<U256> salt, int depth,
                                std::uint64_t gas,
                                evm::ExecutionResult& result) override;
  void selfdestruct(const Address& contract,
                    const Address& beneficiary) override;
  evm::Hash256 block_hash(std::uint64_t number) override;
  bool account_exists(const Address& account) override;

 private:
  using Snapshot = std::map<Address, Account>;

  Snapshot snapshot() const { return accounts_; }
  void rollback(Snapshot snapshot) { accounts_ = std::move(snapshot); }

  std::map<Address, Account> accounts_;
  std::vector<evm::LogEntry> logs_;
  evm::BlockContext block_;
  evm::TraceSink* trace_ = nullptr;
};

}  // namespace phishinghook::chain
