#include "chain/state.hpp"

#include "common/errors.hpp"
#include "evm/keccak.hpp"

namespace phishinghook::chain {

Account& State::touch(const Address& address) { return accounts_[address]; }

const Account* State::find(const Address& address) const {
  const auto it = accounts_.find(address);
  return it == accounts_.end() ? nullptr : &it->second;
}

void State::set_balance(const Address& address, const U256& balance) {
  touch(address).balance = balance;
}

void State::set_code(const Address& address, Bytecode code) {
  touch(address).code = std::move(code);
}

std::uint64_t State::increment_nonce(const Address& address) {
  return touch(address).nonce++;
}

U256 State::get_balance(const Address& account) {
  const Account* acct = find(account);
  return acct == nullptr ? U256() : acct->balance;
}

Bytecode State::get_code(const Address& account) {
  const Account* acct = find(account);
  return acct == nullptr ? Bytecode() : acct->code;
}

U256 State::sload(const Address& account, const U256& key) {
  const Account* acct = find(account);
  if (acct == nullptr) return U256();
  const auto it = acct->storage.find(key);
  return it == acct->storage.end() ? U256() : it->second;
}

void State::sstore(const Address& account, const U256& key, const U256& value) {
  if (value.is_zero()) {
    touch(account).storage.erase(key);
  } else {
    touch(account).storage[key] = value;
  }
}

bool State::transfer(const Address& from, const Address& to, const U256& value) {
  if (value.is_zero()) return true;
  Account& sender = touch(from);
  if (sender.balance < value) return false;
  sender.balance -= value;
  touch(to).balance += value;
  return true;
}

void State::emit_log(evm::LogEntry entry) { logs_.push_back(std::move(entry)); }

evm::ExecutionResult State::call(const evm::Message& message,
                                 evm::CallKind kind, int depth) {
  evm::ExecutionResult result;
  if (depth > evm::Interpreter::kMaxCallDepth) {
    result.status = evm::Status::kCallDepthExceeded;
    return result;
  }

  const Snapshot before = snapshot();
  const std::size_t log_mark = logs_.size();

  // Value moves only for plain CALL (and CALLCODE, into self).
  if (kind == evm::CallKind::kCall || kind == evm::CallKind::kCallCode) {
    const Address recipient = kind == evm::CallKind::kCall
                                  ? message.storage_address
                                  : message.caller;
    if (!transfer(message.caller, recipient, message.value)) {
      result.status = evm::Status::kRevert;  // insufficient balance
      return result;
    }
  }

  const Bytecode code = get_code(message.code_address);
  if (code.empty()) {
    // Calling an EOA or empty account succeeds immediately (pure transfer).
    result.status = evm::Status::kSuccess;
    return result;
  }

  evm::Interpreter interpreter(block_);
  interpreter.set_trace(trace_);
  result = interpreter.execute(message, code, *this, depth);
  if (!result.ok()) {
    rollback(before);
    logs_.resize(log_mark);
  }
  return result;
}

std::optional<Address> State::create(const Address& creator, const U256& value,
                                     std::span<const std::uint8_t> init_code,
                                     std::optional<U256> salt, int depth,
                                     std::uint64_t gas,
                                     evm::ExecutionResult& result) {
  if (depth > evm::Interpreter::kMaxCallDepth) {
    result.status = evm::Status::kCallDepthExceeded;
    return std::nullopt;
  }

  const Snapshot before = snapshot();
  const std::size_t log_mark = logs_.size();

  const std::uint64_t nonce = increment_nonce(creator);
  const Address created =
      salt.has_value()
          ? evm::derive_create2_address(creator, *salt, init_code)
          : evm::derive_contract_address(creator, nonce);

  // Collision with an existing contract account fails the create.
  if (const Account* existing = find(created);
      existing != nullptr && (!existing->code.empty() || existing->nonce > 0)) {
    result.status = evm::Status::kRevert;
    rollback(before);
    return std::nullopt;
  }

  touch(created).nonce = 1;
  if (!transfer(creator, created, value)) {
    result.status = evm::Status::kRevert;
    rollback(before);
    return std::nullopt;
  }

  evm::Message init_msg;
  init_msg.caller = creator;
  init_msg.code_address = created;
  init_msg.storage_address = created;
  init_msg.origin = creator;
  init_msg.value = value;
  init_msg.gas = gas;

  evm::Interpreter interpreter(block_);
  interpreter.set_trace(trace_);
  const Bytecode init(std::vector<std::uint8_t>(init_code.begin(), init_code.end()));
  result = interpreter.execute(init_msg, init, *this, depth);
  if (!result.ok()) {
    rollback(before);
    logs_.resize(log_mark);
    return std::nullopt;
  }

  // The init frame's RETURN payload becomes the runtime code.
  set_code(created, Bytecode(result.output));
  return created;
}

void State::selfdestruct(const Address& contract, const Address& beneficiary) {
  const U256 balance = get_balance(contract);
  if (!balance.is_zero() && beneficiary != contract) {
    touch(beneficiary).balance += balance;
  }
  Account& acct = touch(contract);
  acct.balance = U256();
  acct.code = Bytecode();
  acct.storage.clear();
}

evm::Hash256 State::block_hash(std::uint64_t number) {
  // The simulated chain derives block hashes deterministically.
  std::array<std::uint8_t, 8> be{};
  for (int i = 0; i < 8; ++i) {
    be[7 - i] = static_cast<std::uint8_t>(number >> (8 * i));
  }
  return evm::keccak256(be);
}

bool State::account_exists(const Address& account) {
  return find(account) != nullptr;
}

evm::ExecutionResult State::execute_transaction(const evm::Message& message) {
  increment_nonce(message.caller);
  return call(message, evm::CallKind::kCall, /*depth=*/0);
}

Address State::deploy(const Address& creator,
                      std::span<const std::uint8_t> init_code,
                      const U256& endowment) {
  evm::ExecutionResult result;
  const std::optional<Address> created =
      create(creator, endowment, init_code, std::nullopt, /*depth=*/0,
             /*gas=*/30'000'000, result);
  if (!created.has_value()) {
    throw StateError(std::string("contract deployment failed: ") +
                     evm::status_name(result.status));
  }
  return *created;
}

Address State::install_code(const Address& creator, Bytecode runtime_code) {
  const std::uint64_t nonce = increment_nonce(creator);
  const Address address = evm::derive_contract_address(creator, nonce);
  Account& acct = touch(address);
  acct.nonce = 1;
  acct.code = std::move(runtime_code);
  return address;
}

}  // namespace phishinghook::chain
