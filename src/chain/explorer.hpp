// Explorer: the etherscan.io stand-in.
//
// Provides the two services PhishingHook's data-gathering phase consumes
// (paper Fig. 1-2/3):
//   * a label service that flags contracts as "Phish/Hack" (the scrape step
//     over the 4M candidate hashes), and
//   * the JSON-RPC `eth_getCode` endpoint used by the Bytecode Extraction
//     Module (BEM) to pull deployed bytecode.
//
// The real Etherscan is an *independent* validation source; here labels are
// assigned by whoever populates the corpus (the synthetic generator knows
// ground truth), but the pipeline only ever observes them through this
// scrape interface, preserving the paper's data flow.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "chain/chain_store.hpp"

namespace phishinghook::chain {

/// Flag taxonomy, mirroring the etherscan labels the paper relies on.
enum class ContractFlag {
  kNone,       ///< not flagged — treated as benign in the dataset
  kPhishHack,  ///< the "Phish/Hack" label used for the positive class
};

/// One incremental-crawl snapshot: every deployment past a cursor plus the
/// head observed in the same read. The pairing matters for streaming —
/// ingest lag (head minus cursor) is only meaningful if both numbers come
/// from one consistent view of the chain (stream::LiveChain's synchronized
/// explorer takes its lock around exactly this pair).
struct ChainTail {
  std::vector<ContractRecord> records;  ///< block_number > cursor, chain order
  std::uint64_t head_block = 0;         ///< head at snapshot time
};

/// The read path (eth_get_code / get_code / flag_of / crawl) is virtual so
/// decorators — FaultInjectingExplorer in fault_injection.hpp is the one
/// shipped here — can interpose on exactly what a flaky upstream node would
/// degrade, while consumers (the BEM, the scoring engine) stay written
/// against plain `const Explorer&`. The label *write* path stays
/// non-virtual: decorators wrap a corpus that is already populated.
class Explorer {
 public:
  explicit Explorer(const ChainStore& chain) : chain_(&chain) {}
  virtual ~Explorer() = default;

  /// JSON-RPC eth_getCode: the deployed bytecode as "0x..." hex.
  /// Unknown accounts return "0x" like a real node.
  virtual std::string eth_get_code(const Address& address) const;

  /// The same, decoded — the BEM's working form.
  virtual Bytecode get_code(const Address& address) const;

  /// Label-service write path (exercised by corpus generation).
  void flag(const Address& address, ContractFlag flag);

  /// Label-service read path (the scrape).
  virtual ContractFlag flag_of(const Address& address) const;
  bool is_flagged_phishing(const Address& address) const;

  /// Crawl: all contract addresses deployed in [from, to] months — the raw
  /// unlabeled hash list of the paper's data-gathering phase.
  virtual std::vector<Address> crawl(Month from, Month to) const;

  /// Incremental crawl: deployments strictly after `after_block` plus the
  /// chain head, the primitive the streaming BlockFollower tails. Like
  /// crawl(), decorators delegate this untouched — enumeration is journal
  /// metadata; only the code fetch is a faultable upstream surface.
  virtual ChainTail crawl_after(std::uint64_t after_block) const;

  /// Chain head at call time (streaming ingest-lag accounting).
  virtual std::uint64_t head_block() const { return chain_->head_block(); }

  virtual std::size_t flagged_count() const { return phishing_.size(); }

  /// The chain this explorer fronts (decorators re-anchor on it).
  const ChainStore& chain() const { return *chain_; }

 private:
  const ChainStore* chain_;
  // Hash set, not a tree: flag_of sits on the serving hot path (every
  // label scrape and dataset build probes it per address).
  std::unordered_set<Address> phishing_;
};

}  // namespace phishinghook::chain
