#include "chain/chain_store.hpp"

#include <algorithm>
#include <cstdio>

#include "common/errors.hpp"

namespace phishinghook::chain {

namespace {

// Days per month for the 2023-10 .. 2024-10 window (2024 is a leap year).
constexpr int kDaysInWindowMonth[Month::kCount] = {
    31,  // 2023-10
    30,  // 2023-11
    31,  // 2023-12
    31,  // 2024-01
    29,  // 2024-02
    31,  // 2024-03
    30,  // 2024-04
    31,  // 2024-05
    30,  // 2024-06
    31,  // 2024-07
    31,  // 2024-08
    30,  // 2024-09
    31,  // 2024-10
};

// Unix timestamp of 2023-10-01T00:00:00Z.
constexpr std::uint64_t kWindowStart = 1696118400;

// The paper anchors its study at the Shanghai update, block 17034870; our
// window begins somewhat later in 2023.
constexpr std::uint64_t kWindowStartBlock = 18250000;

constexpr std::uint64_t kSecondsPerSlot = 12;

}  // namespace

std::string Month::label() const {
  if (index < 0 || index >= kCount) {
    throw InvalidArgument("month index " + std::to_string(index) +
                          " outside the 2023-10..2024-10 study window");
  }
  const int absolute = 9 + index;  // months since 2023-01, 0-based
  const int year = 2023 + absolute / 12;
  const int month = absolute % 12 + 1;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", year, month);
  return buf;
}

std::uint64_t Month::start_timestamp() const {
  if (index < 0 || index >= kCount) {
    throw InvalidArgument("month index " + std::to_string(index) +
                          " outside the 2023-10..2024-10 study window");
  }
  std::uint64_t ts = kWindowStart;
  for (int m = 0; m < index; ++m) {
    ts += static_cast<std::uint64_t>(kDaysInWindowMonth[m]) * 86400;
  }
  return ts;
}

ChainStore::ChainStore()
    : head_block_(kWindowStartBlock),
      head_timestamp_(kWindowStart),
      head_month_{0} {
  evm::BlockContext block;
  block.number = head_block_;
  block.timestamp = head_timestamp_;
  state_.set_block(block);
}

void ChainStore::advance_to(Month month) {
  if (month < head_month_) {
    throw InvalidArgument("chain cannot rewind from " + head_month_.label() +
                          " to " + month.label());
  }
  if (month == head_month_) return;
  const std::uint64_t target = month.start_timestamp();
  head_block_ += (target - head_timestamp_) / kSecondsPerSlot;
  head_timestamp_ = target;
  head_month_ = month;

  evm::BlockContext block = state_.block();
  block.number = head_block_;
  block.timestamp = head_timestamp_;
  state_.set_block(block);
}

std::uint64_t ChainStore::mine_next_block(std::uint64_t slots) {
  if (slots == 0) {
    throw InvalidArgument("mine_next_block: slots must be > 0");
  }
  head_block_ += slots;
  head_timestamp_ += slots * kSecondsPerSlot;
  // Roll the calendar month as slots cross month boundaries; the head month
  // saturates at 2024-10 so post-window mining keeps a valid month stamp.
  while (head_month_.index + 1 < Month::kCount &&
         head_timestamp_ >= Month{head_month_.index + 1}.start_timestamp()) {
    head_month_.index += 1;
  }
  evm::BlockContext block = state_.block();
  block.number = head_block_;
  block.timestamp = head_timestamp_;
  state_.set_block(block);
  return head_block_;
}

const ContractRecord& ChainStore::record_deployment(const Address& deployer,
                                                    const Address& address) {
  // Each deployment occupies its own slot, nudging the head forward.
  head_block_ += 1;
  head_timestamp_ += kSecondsPerSlot;

  ContractRecord record;
  record.address = address;
  record.deployer = deployer;
  record.block_number = head_block_;
  record.timestamp = head_timestamp_;
  record.month = head_month_;
  record.code_hash = state_.get_code(address).code_hash();
  records_.push_back(record);
  return records_.back();
}

const ContractRecord& ChainStore::register_contract(const Address& deployer,
                                                    Bytecode runtime_code) {
  const Address address = state_.install_code(deployer, std::move(runtime_code));
  return record_deployment(deployer, address);
}

const ContractRecord& ChainStore::deploy_contract(
    const Address& deployer, std::span<const std::uint8_t> init_code) {
  const Address address = state_.deploy(deployer, init_code);
  return record_deployment(deployer, address);
}

const ContractRecord* ChainStore::find(const Address& address) const {
  for (const ContractRecord& record : records_) {
    if (record.address == address) return &record;
  }
  return nullptr;
}

std::vector<const ContractRecord*> ChainStore::contracts_between(
    Month from, Month to) const {
  std::vector<const ContractRecord*> out;
  for (const ContractRecord& record : records_) {
    if (record.month >= from && record.month <= to) out.push_back(&record);
  }
  return out;
}

std::vector<ContractRecord> ChainStore::contracts_after(
    std::uint64_t block) const {
  // records_ is in chain order with strictly increasing block numbers
  // (every deployment occupies its own slot), so the new suffix is one
  // binary search away.
  const auto first = std::upper_bound(
      records_.begin(), records_.end(), block,
      [](std::uint64_t b, const ContractRecord& record) {
        return b < record.block_number;
      });
  return {first, records_.end()};
}

}  // namespace phishinghook::chain
