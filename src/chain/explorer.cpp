#include "chain/explorer.hpp"

namespace phishinghook::chain {

std::string Explorer::eth_get_code(const Address& address) const {
  return get_code(address).to_hex();
}

Bytecode Explorer::get_code(const Address& address) const {
  const Account* account = chain_->state().find(address);
  return account == nullptr ? Bytecode() : account->code;
}

void Explorer::flag(const Address& address, ContractFlag flag) {
  if (flag == ContractFlag::kPhishHack) {
    phishing_.insert(address);
  } else {
    phishing_.erase(address);
  }
}

ContractFlag Explorer::flag_of(const Address& address) const {
  return phishing_.contains(address) ? ContractFlag::kPhishHack
                                     : ContractFlag::kNone;
}

bool Explorer::is_flagged_phishing(const Address& address) const {
  return flag_of(address) == ContractFlag::kPhishHack;
}

std::vector<Address> Explorer::crawl(Month from, Month to) const {
  const std::vector<const ContractRecord*> records =
      chain_->contracts_between(from, to);
  std::vector<Address> out;
  out.reserve(records.size());
  for (const ContractRecord* record : records) {
    out.push_back(record->address);
  }
  return out;
}

ChainTail Explorer::crawl_after(std::uint64_t after_block) const {
  ChainTail tail;
  tail.records = chain_->contracts_after(after_block);
  tail.head_block = chain_->head_block();
  return tail;
}

}  // namespace phishinghook::chain
