// FaultInjectingExplorer: a deterministic chaos decorator for the explorer.
//
// Live serving talks to an upstream node that fails in three observable
// ways: requests error out (rate limits, timeouts), return "0x" for
// contracts that do exist (lagging replicas), or simply stall. This
// decorator injects all three on a *seeded, replayable* schedule so the
// chaos test suite and the bench fault-mix mode can drive the scoring
// engine through hostile conditions and still assert exact outcomes.
//
// Determinism model: every code fetch for address A increments A's private
// attempt counter, and the fault decision is a pure splitmix64 draw over
// (seed, A, attempt). The schedule therefore does not depend on thread
// interleaving — submitting the same address list through 1 worker or 4
// yields the same per-address fault sequence, which is what lets
// test_serve_faults compare engine outputs across thread counts.
//
// Only the code-fetch path (eth_get_code / get_code) is faulted; label
// reads and crawls delegate untouched, mirroring how etherscan's label
// pages and a JSON-RPC endpoint fail independently in practice.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "chain/explorer.hpp"

namespace phishinghook::chain {

/// Fault mix. Rates are probabilities per code fetch and are applied in
/// order (throw, then empty, then delay), so their sum must be <= 1.
struct FaultConfig {
  double throw_rate = 0.0;    ///< common::TransientError from the fetch
  double empty_rate = 0.0;    ///< "0x" as if the account held no code
  double latency_rate = 0.0;  ///< stall for latency_us, then answer
  std::uint64_t latency_us = 1000;
  std::uint64_t seed = 1;
};

/// Counters of what was actually injected (reads are monotonic snapshots).
struct FaultStats {
  std::uint64_t calls = 0;
  std::uint64_t throws = 0;
  std::uint64_t empties = 0;
  std::uint64_t delays = 0;
};

class FaultInjectingExplorer final : public Explorer {
 public:
  /// Wraps `inner`, which must outlive the decorator.
  FaultInjectingExplorer(const Explorer& inner, FaultConfig config);

  std::string eth_get_code(const Address& address) const override;
  Bytecode get_code(const Address& address) const override;

  ContractFlag flag_of(const Address& address) const override {
    return inner_->flag_of(address);
  }
  std::vector<Address> crawl(Month from, Month to) const override {
    return inner_->crawl(from, to);
  }
  // The incremental crawl is journal metadata, exactly like the batch
  // crawl: it delegates untouched, so a streaming BlockFollower reading
  // through this decorator sees the real deployment sequence while its
  // per-deployment code fetches hit the seeded fault schedule above.
  ChainTail crawl_after(std::uint64_t after_block) const override {
    return inner_->crawl_after(after_block);
  }
  std::uint64_t head_block() const override { return inner_->head_block(); }
  std::size_t flagged_count() const override {
    return inner_->flagged_count();
  }

  FaultStats stats() const;

 private:
  enum class Fault { kNone, kThrow, kEmpty, kDelay };

  /// Draws the fault for this fetch and advances the address's attempt
  /// counter. Throws TransientError itself on kThrow (the message carries
  /// address + attempt, so retries are distinguishable in logs).
  Fault next_fault(const Address& address) const;

  const Explorer* inner_;
  FaultConfig config_;

  mutable std::mutex mutex_;
  mutable std::unordered_map<Address, std::uint64_t> attempts_;

  mutable std::atomic<std::uint64_t> calls_{0};
  mutable std::atomic<std::uint64_t> throws_{0};
  mutable std::atomic<std::uint64_t> empties_{0};
  mutable std::atomic<std::uint64_t> delays_{0};
};

}  // namespace phishinghook::chain
