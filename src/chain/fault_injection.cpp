#include "chain/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace phishinghook::chain {

FaultInjectingExplorer::FaultInjectingExplorer(const Explorer& inner,
                                               FaultConfig config)
    : Explorer(inner.chain()), inner_(&inner), config_(config) {
  const double total =
      config_.throw_rate + config_.empty_rate + config_.latency_rate;
  if (config_.throw_rate < 0.0 || config_.empty_rate < 0.0 ||
      config_.latency_rate < 0.0 || total > 1.0) {
    throw InvalidArgument("fault rates must be >= 0 and sum to <= 1");
  }
}

FaultInjectingExplorer::Fault FaultInjectingExplorer::next_fault(
    const Address& address) const {
  std::uint64_t attempt;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    attempt = attempts_[address]++;
  }
  calls_.fetch_add(1, std::memory_order_relaxed);

  // Pure function of (seed, address, attempt): the schedule replays
  // identically at any thread count.
  std::uint64_t state = config_.seed ^
                        (static_cast<std::uint64_t>(
                             std::hash<Address>{}(address)) *
                         0x9e3779b97f4a7c15ULL) ^
                        ((attempt + 1) * 0xbf58476d1ce4e5b9ULL);
  const double u =
      static_cast<double>(common::splitmix64(state) >> 11) * 0x1.0p-53;

  if (u < config_.throw_rate) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    throw TransientError("injected explorer fault: " + address.to_hex() +
                         " attempt " + std::to_string(attempt));
  }
  if (u < config_.throw_rate + config_.empty_rate) {
    empties_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kEmpty;
  }
  if (u < config_.throw_rate + config_.empty_rate + config_.latency_rate) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    return Fault::kDelay;
  }
  return Fault::kNone;
}

std::string FaultInjectingExplorer::eth_get_code(
    const Address& address) const {
  switch (next_fault(address)) {
    case Fault::kEmpty:
      return "0x";
    case Fault::kDelay:
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.latency_us));
      break;
    default:
      break;
  }
  return inner_->eth_get_code(address);
}

Bytecode FaultInjectingExplorer::get_code(const Address& address) const {
  switch (next_fault(address)) {
    case Fault::kEmpty:
      return Bytecode();
    case Fault::kDelay:
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.latency_us));
      break;
    default:
      break;
  }
  return inner_->get_code(address);
}

FaultStats FaultInjectingExplorer::stats() const {
  FaultStats out;
  out.calls = calls_.load(std::memory_order_relaxed);
  out.throws = throws_.load(std::memory_order_relaxed);
  out.empties = empties_.load(std::memory_order_relaxed);
  out.delays = delays_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace phishinghook::chain
