// Explainability walkthrough (the paper's §IV-H in miniature).
//
// Trains the Random Forest on opcode histograms, picks one phishing and one
// benign contract from a held-out split, computes exact TreeSHAP values,
// and prints which opcodes pushed each verdict — including the disassembly
// lines where the most incriminating opcode appears.
//
// Build & run:  ./build/examples/explain_prediction
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/features.hpp"
#include "core/experiment.hpp"
#include "ml/cross_validation.hpp"
#include "ml/random_forest.hpp"
#include "ml/shap.hpp"
#include "synth/dataset_builder.hpp"

namespace {

using namespace phishinghook;

void explain_one(const synth::LabeledContract& sample,
                 const core::HistogramVocabulary& vocab,
                 const ml::RandomForestClassifier& forest) {
  const std::vector<double> features = vocab.transform(sample.code);
  const ml::ShapExplanation explanation =
      ml::tree_shap(forest, features);

  double prob = explanation.expected_value;
  for (double phi : explanation.values) prob += phi;
  std::printf("\ncontract %s  (truth: %s, family: %s)\n",
              sample.address.to_hex().c_str(),
              sample.phishing ? "Phish/Hack" : "benign",
              std::string(synth::family_name(sample.family)).c_str());
  std::printf("P(phishing) = %.3f  (base value %.3f + sum of "
              "contributions)\n",
              prob, explanation.expected_value);

  std::vector<std::size_t> order(explanation.values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(explanation.values[a]) > std::fabs(explanation.values[b]);
  });

  std::printf("top contributions:\n");
  for (std::size_t k = 0; k < 6 && k < order.size(); ++k) {
    const std::size_t f = order[k];
    std::printf("  %-14s count=%-4.0f phi=%+0.4f  (%s phishing)\n",
                vocab.mnemonics()[f].c_str(), features[f],
                explanation.values[f],
                explanation.values[f] > 0 ? "toward" : "away from");
  }

  // Show where the most incriminating opcode sits in the code.
  const std::size_t top_feature = order.front();
  const std::string& mnemonic = vocab.mnemonics()[top_feature];
  const evm::Disassembly listing =
      evm::Disassembler().disassemble(sample.code);
  std::printf("first occurrences of %s in the disassembly:\n",
              mnemonic.c_str());
  int shown = 0;
  for (const evm::Instruction& ins : listing.instructions) {
    if (ins.mnemonic != mnemonic) continue;
    std::printf("  pc=%04zu  %s\n", ins.pc, ins.to_string().c_str());
    if (++shown == 3) break;
  }
  if (shown == 0) std::printf("  (absent — its absence was the signal)\n");
}

}  // namespace

int main() {
  synth::DatasetConfig config;
  config.target_size = 300;
  config.seed = 5;
  const synth::BuiltDataset dataset = synth::DatasetBuilder(config).build();

  const auto codes = core::codes_of(dataset.samples);
  const auto labels = core::labels_of(dataset.samples);
  common::Rng rng(8);
  const ml::Fold fold = ml::stratified_holdout(labels, 0.2, rng);

  std::vector<const evm::Bytecode*> train_codes;
  std::vector<int> train_labels;
  for (std::size_t i : fold.train_indices) {
    train_codes.push_back(codes[i]);
    train_labels.push_back(labels[i]);
  }

  core::HistogramVocabulary vocab;
  vocab.fit(train_codes);
  ml::RandomForestConfig forest_config;
  forest_config.n_trees = 60;
  ml::RandomForestClassifier forest(forest_config);
  forest.fit(vocab.transform_all(train_codes), train_labels);
  std::printf("Random Forest trained on %zu contracts, %zu opcode features\n",
              train_codes.size(), vocab.size());

  // Explain one held-out contract per class.
  const synth::LabeledContract* phishing_sample = nullptr;
  const synth::LabeledContract* benign_sample = nullptr;
  for (std::size_t i : fold.test_indices) {
    const synth::LabeledContract& sample = dataset.samples[i];
    if (sample.phishing && phishing_sample == nullptr) {
      phishing_sample = &sample;
    }
    if (!sample.phishing && benign_sample == nullptr) benign_sample = &sample;
  }
  if (phishing_sample != nullptr) explain_one(*phishing_sample, vocab, forest);
  if (benign_sample != nullptr) explain_one(*benign_sample, vocab, forest);
  return 0;
}
