// Contract scanner: the paper's motivating deployment scenario.
//
// A crypto wallet (or a monitoring service like the paper's prospective
// Etherscan customer) must warn users *before* they sign — §IV-F: "users
// interact with smart contracts in real-time, often signing transactions
// within seconds". This example trains a detector on the historical window,
// then watches a live stream of fresh deployments and flags phishing
// contracts, reporting per-contract scan latency.
//
// Build & run:  ./build/examples/contract_scanner
#include <cstdio>

#include "common/timer.hpp"
#include "core/bem.hpp"
#include "core/experiment.hpp"
#include "synth/dataset_builder.hpp"

int main() {
  using namespace phishinghook;

  // --- historical training data (months 2023-10 .. 2024-07) ----------------
  synth::DatasetConfig config;
  config.target_size = 300;
  config.seed = 21;
  config.match_benign_temporal = true;
  const synth::BuiltDataset history = synth::DatasetBuilder(config).build();

  std::vector<const evm::Bytecode*> train_codes;
  std::vector<int> train_labels;
  for (const synth::LabeledContract& sample : history.samples) {
    if (sample.month.index <= 9) {  // keep the last months as "the future"
      train_codes.push_back(&sample.code);
      train_labels.push_back(sample.phishing ? 1 : 0);
    }
  }
  const auto specs = core::all_models(common::scale_params(common::Scale::kSmoke));
  auto detector = core::find_model(specs, "Random Forest").make(3);
  common::Timer train_timer;
  detector->fit(train_codes, train_labels);
  std::printf("detector trained on %zu historical contracts in %.2fs\n\n",
              train_codes.size(), train_timer.seconds());

  // --- live stream: fresh deployments arriving on-chain ---------------------
  // The scanner sees only addresses; it pulls bytecode through the BEM, the
  // same eth_getCode path a production integration would use.
  const core::BytecodeExtractionModule bem(*history.explorer);
  std::size_t scanned = 0, flagged = 0, missed = 0, false_alarms = 0;
  double worst_latency = 0.0;

  std::printf("scanning fresh deployments (2024-08..2024-10):\n");
  for (const synth::LabeledContract& sample : history.samples) {
    if (sample.month.index <= 9) continue;
    common::Timer scan_timer;
    const core::ExtractedContract contract = bem.extract(sample.address);
    const double prob =
        detector->predict_proba({&contract.code}).front();
    const double latency_ms = scan_timer.milliseconds();
    worst_latency = std::max(worst_latency, latency_ms);
    ++scanned;

    const bool alarm = prob >= 0.5;
    if (alarm && sample.phishing) ++flagged;
    if (!alarm && sample.phishing) ++missed;
    if (alarm && !sample.phishing) ++false_alarms;
    if (alarm) {
      std::printf("  !! %s  P(phishing)=%.2f  (%0.1f ms)%s\n",
                  sample.address.to_hex().c_str(), prob, latency_ms,
                  sample.phishing ? "" : "  <- FALSE ALARM");
    }
  }

  std::printf("\nscanned %zu new contracts\n", scanned);
  std::printf("  phishing caught:  %zu\n", flagged);
  std::printf("  phishing missed:  %zu\n", missed);
  std::printf("  false alarms:     %zu\n", false_alarms);
  std::printf("  worst scan latency: %.1f ms (wallet signing budget: "
              "seconds)\n",
              worst_latency);
  return 0;
}
