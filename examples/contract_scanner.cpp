// Contract scanner: the paper's motivating deployment scenario, on the
// serving stack.
//
// A crypto wallet (or a monitoring service like the paper's prospective
// Etherscan customer) must warn users *before* they sign — §IV-F: "users
// interact with smart contracts in real-time, often signing transactions
// within seconds". The seed version of this example retrained the detector
// in-process on every start and scored one contract at a time; this
// version runs the production shape end to end:
//
//   1. train the Random Forest on the historical window (once),
//   2. freeze it to a model artifact on disk,
//   3. load the artifact back (what a scoring replica actually boots from),
//   4. stand up the batching ScoringEngine and scan the fresh-deployment
//      stream from concurrent producer threads, and
//   5. dump the service metrics (latency percentiles, batch occupancy,
//      cache hit rate).
//
// Build & run:  ./build/examples/contract_scanner
//   --metrics <path>   write the full Prometheus exposition (engine registry
//                      + process-wide registry) after the scan
//   --trace <path>     write a chrome://tracing span trace of the run
//                      (equivalent to PHISHINGHOOK_TRACE=<path>)
//   --chaos <rate>     interpose a FaultInjectingExplorer on the scan:
//                      eth_getCode throws at <rate>, returns empty code at
//                      <rate>/2, stalls at <rate>/4. The scan must still
//                      complete with every request accounted for
//                      (completed + failed + shed == submitted); the ci.sh
//                      chaos smoke step runs this at 10% and checks the
//                      per-status summary.
//   --metrics-port <p> serve /metrics, /vars and /healthz on
//                      127.0.0.1:<p> for the lifetime of the run (0 picks
//                      an ephemeral port, printed at startup); the
//                      exposition covers the engine registry and the
//                      process-wide registry, with tracer ring health
//                      synced on every scrape
//   --linger <secs>    keep the process (and the scrape server) alive for
//                      <secs> after the scan so an external scraper can
//                      pull the final state
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "chain/fault_injection.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"
#include "obs/trace.hpp"
#include "serve/artifact.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace phishinghook;

  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  double chaos_rate = 0.0;
  int metrics_port = -1;
  double linger_s = 0.0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--metrics") == 0 && a + 1 < argc) {
      metrics_path = argv[++a];
    } else if (std::strcmp(argv[a], "--trace") == 0 && a + 1 < argc) {
      trace_path = argv[++a];
    } else if (std::strcmp(argv[a], "--chaos") == 0 && a + 1 < argc) {
      chaos_rate = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--metrics-port") == 0 && a + 1 < argc) {
      metrics_port = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--linger") == 0 && a + 1 < argc) {
      linger_s = std::atof(argv[++a]);
    } else {
      std::fprintf(stderr,
                   "usage: contract_scanner [--metrics <path>] "
                   "[--trace <path>] [--chaos <rate>] "
                   "[--metrics-port <port>] [--linger <secs>]\n");
      return 2;
    }
  }
  if (trace_path != nullptr) obs::Tracer::global().enable();

  // --- historical training data (months 2023-10 .. 2024-07) ----------------
  synth::DatasetConfig config;
  config.target_size = 300;
  config.seed = 21;
  config.match_benign_temporal = true;
  const synth::BuiltDataset history = synth::DatasetBuilder(config).build();

  std::vector<const evm::Bytecode*> train_codes;
  std::vector<int> train_labels;
  for (const synth::LabeledContract& sample : history.samples) {
    if (sample.month.index <= 9) {  // keep the last months as "the future"
      train_codes.push_back(&sample.code);
      train_labels.push_back(sample.phishing ? 1 : 0);
    }
  }

  ml::RandomForestConfig forest;
  forest.seed = 3;
  core::HistogramAdapter trained(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  common::Timer train_timer;
  trained.fit(train_codes, train_labels);
  std::printf("detector trained on %zu historical contracts in %.2fs\n",
              train_codes.size(), train_timer.seconds());

  // --- train once, serve many: freeze + reload the artifact ----------------
  const std::filesystem::path artifact_path =
      std::filesystem::temp_directory_path() / "contract_scanner.phookmdl";
  serve::save_artifact_file(artifact_path, trained);
  common::Timer load_timer;
  const std::unique_ptr<core::HistogramAdapter> detector =
      serve::load_artifact_file(artifact_path);
  std::printf("artifact: %ju bytes at %s, reloaded in %.1f ms\n\n",
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(artifact_path)),
              artifact_path.c_str(), load_timer.milliseconds());

  // --- live stream: fresh deployments arriving on-chain ---------------------
  // The engine sees only addresses; bytecode is pulled through the BEM, the
  // same eth_getCode path a production integration would use.
  std::vector<const synth::LabeledContract*> fresh;
  for (const synth::LabeledContract& sample : history.samples) {
    if (sample.month.index > 9) fresh.push_back(&sample);
  }

  // Under --chaos the engine reads through a fault-injecting decorator, the
  // same hostile-upstream shape the chaos test suite drives.
  std::unique_ptr<chain::FaultInjectingExplorer> chaos;
  if (chaos_rate > 0.0) {
    chain::FaultConfig faults;
    faults.throw_rate = chaos_rate;
    faults.empty_rate = chaos_rate / 2.0;
    faults.latency_rate = chaos_rate / 4.0;
    faults.latency_us = 500;
    faults.seed = 1337;
    chaos = std::make_unique<chain::FaultInjectingExplorer>(*history.explorer,
                                                            faults);
    std::printf("chaos mode: eth_getCode throws at %.0f%%, empty at %.0f%%, "
                "stalls at %.0f%%\n",
                100.0 * faults.throw_rate, 100.0 * faults.empty_rate,
                100.0 * faults.latency_rate);
  }
  const chain::Explorer& upstream =
      chaos ? static_cast<const chain::Explorer&>(*chaos) : *history.explorer;

  serve::EngineConfig engine_config;
  engine_config.workers = 4;
  engine_config.max_batch = 16;
  serve::ScoringEngine engine(upstream, *detector, engine_config);

  // Scrape endpoint over the engine's registry + the process-wide one;
  // cache stats and tracer ring health are synced per scrape by hooks.
  obs::ScrapeServer scrape;
  if (metrics_port >= 0) {
    scrape.add_registry(engine.prometheus_registry());
    scrape.add_registry(obs::MetricsRegistry::global());
    scrape.add_pre_scrape_hook([&engine] { engine.export_pull_metrics(); });
    scrape.add_pre_scrape_hook([] {
      obs::Tracer::global().export_metrics(obs::MetricsRegistry::global());
    });
    scrape.start(static_cast<std::uint16_t>(metrics_port));
    std::printf("metrics: http://127.0.0.1:%u/metrics (also /vars, /healthz)\n",
                scrape.port());
    std::fflush(stdout);  // external scrapers poll stdout for this URL
  }

  std::printf("scanning fresh deployments (2024-08..2024-10) on %zu workers, "
              "%d producers:\n",
              engine_config.workers, 2);
  std::vector<std::vector<serve::ScoreResult>> halves(2);
  common::Timer scan_timer;
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        // Each producer scans half the stream, as two wallet frontends would.
        std::vector<evm::Address> addresses;
        for (std::size_t i = p; i < fresh.size(); i += 2) {
          addresses.push_back(fresh[i]->address);
        }
        halves[p] = engine.score_all(addresses);
      });
    }
    for (std::thread& producer : producers) producer.join();
  }
  const double scan_ms = scan_timer.milliseconds();

  std::size_t scanned = 0, flagged = 0, missed = 0, false_alarms = 0;
  std::map<serve::ScoreStatus, std::size_t> by_status;
  for (int p = 0; p < 2; ++p) {
    for (std::size_t r = 0; r < halves[p].size(); ++r) {
      const serve::ScoreResult& result = halves[p][r];
      const synth::LabeledContract& sample =
          *fresh[static_cast<std::size_t>(p) + 2 * r];
      ++scanned;
      ++by_status[result.status];
      if (result.flagged && sample.phishing) ++flagged;
      if (!result.flagged && sample.phishing) ++missed;
      if (result.flagged && !sample.phishing) ++false_alarms;
      if (result.flagged) {
        std::printf("  !! %s  P(phishing)=%.2f  (%.0f us%s)%s\n",
                    result.address.to_hex().c_str(), result.probability,
                    result.latency_us, result.cache_hit ? ", cached" : "",
                    sample.phishing ? "" : "  <- FALSE ALARM");
      }
    }
  }

  std::printf("\nscanned %zu new contracts in %.1f ms\n", scanned, scan_ms);
  std::printf("  phishing caught:  %zu\n", flagged);
  std::printf("  phishing missed:  %zu\n", missed);
  std::printf("  false alarms:     %zu\n", false_alarms);

  // Per-status breakdown + the fault-isolation accounting invariant. Under
  // --chaos this is the contract CI enforces: every submission resolves to
  // exactly one terminal status, no matter how hostile the upstream was.
  std::printf("status counts:");
  for (const serve::ScoreStatus status :
       {serve::ScoreStatus::kOk, serve::ScoreStatus::kEmptyCode,
        serve::ScoreStatus::kDegraded, serve::ScoreStatus::kExtractError,
        serve::ScoreStatus::kModelError, serve::ScoreStatus::kShed}) {
    std::printf(" %s=%zu", serve::to_string(status), by_status[status]);
  }
  std::printf("\n");
  const serve::ServiceMetrics& service = engine.metrics();
  const std::uint64_t submitted = service.requests_submitted.value();
  const std::uint64_t accounted = service.requests_completed.value() +
                                  service.requests_failed.value() +
                                  service.requests_shed.value();
  std::printf("chaos accounting: submitted=%ju completed=%ju failed=%ju "
              "shed=%ju retries=%ju %s\n",
              static_cast<std::uintmax_t>(submitted),
              static_cast<std::uintmax_t>(service.requests_completed.value()),
              static_cast<std::uintmax_t>(service.requests_failed.value()),
              static_cast<std::uintmax_t>(service.requests_shed.value()),
              static_cast<std::uintmax_t>(service.retries.value()),
              accounted == submitted ? "OK" : "MISMATCH");
  if (accounted != submitted) return 1;

  std::printf("\nservice metrics (wallet signing budget: seconds):\n");
  std::ostringstream metrics;
  engine.dump_metrics(metrics);
  std::printf("%s", metrics.str().c_str());

  // Quiesce the engine before exporting telemetry: worker threads must be
  // joined so the trace rings and counters are final.
  engine.shutdown();
  if (metrics_path != nullptr) {
    std::ofstream out(metrics_path);
    engine.dump_prometheus(out);
    obs::MetricsRegistry::global().write_prometheus(out);
    std::printf("\nmetrics exposition written to %s\n", metrics_path);
  }
  if (trace_path != nullptr) {
    obs::Tracer::global().write_to_file(trace_path);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_path);
  }
  if (metrics_port >= 0 && linger_s > 0.0) {
    std::printf("lingering %.1fs for scrapes on port %u...\n", linger_s,
                scrape.port());
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  std::filesystem::remove(artifact_path);
  return 0;
}
