// Contract scanner: the paper's motivating deployment scenario, on the
// serving stack.
//
// A crypto wallet (or a monitoring service like the paper's prospective
// Etherscan customer) must warn users *before* they sign — §IV-F: "users
// interact with smart contracts in real-time, often signing transactions
// within seconds". The seed version of this example retrained the detector
// in-process on every start and scored one contract at a time; this
// version runs the production shape end to end:
//
//   1. train the Random Forest on the historical window (once),
//   2. freeze it to a model artifact on disk,
//   3. load the artifact back (what a scoring replica actually boots from),
//   4. stand up the batching ScoringEngine and scan the fresh-deployment
//      stream from concurrent producer threads, and
//   5. dump the service metrics (latency percentiles, batch occupancy,
//      cache hit rate).
//
// Build & run:  ./build/examples/contract_scanner
//   --metrics <path>   write the full Prometheus exposition (engine registry
//                      + process-wide registry) after the scan
//   --trace <path>     write a chrome://tracing span trace of the run
//                      (equivalent to PHISHINGHOOK_TRACE=<path>)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/artifact.hpp"
#include "serve/scoring_engine.hpp"
#include "synth/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace phishinghook;

  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--metrics") == 0 && a + 1 < argc) {
      metrics_path = argv[++a];
    } else if (std::strcmp(argv[a], "--trace") == 0 && a + 1 < argc) {
      trace_path = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: contract_scanner [--metrics <path>] "
                   "[--trace <path>]\n");
      return 2;
    }
  }
  if (trace_path != nullptr) obs::Tracer::global().enable();

  // --- historical training data (months 2023-10 .. 2024-07) ----------------
  synth::DatasetConfig config;
  config.target_size = 300;
  config.seed = 21;
  config.match_benign_temporal = true;
  const synth::BuiltDataset history = synth::DatasetBuilder(config).build();

  std::vector<const evm::Bytecode*> train_codes;
  std::vector<int> train_labels;
  for (const synth::LabeledContract& sample : history.samples) {
    if (sample.month.index <= 9) {  // keep the last months as "the future"
      train_codes.push_back(&sample.code);
      train_labels.push_back(sample.phishing ? 1 : 0);
    }
  }

  ml::RandomForestConfig forest;
  forest.seed = 3;
  core::HistogramAdapter trained(
      std::make_unique<ml::RandomForestClassifier>(forest), "Random Forest");
  common::Timer train_timer;
  trained.fit(train_codes, train_labels);
  std::printf("detector trained on %zu historical contracts in %.2fs\n",
              train_codes.size(), train_timer.seconds());

  // --- train once, serve many: freeze + reload the artifact ----------------
  const std::filesystem::path artifact_path =
      std::filesystem::temp_directory_path() / "contract_scanner.phookmdl";
  serve::save_artifact_file(artifact_path, trained);
  common::Timer load_timer;
  const std::unique_ptr<core::HistogramAdapter> detector =
      serve::load_artifact_file(artifact_path);
  std::printf("artifact: %ju bytes at %s, reloaded in %.1f ms\n\n",
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(artifact_path)),
              artifact_path.c_str(), load_timer.milliseconds());

  // --- live stream: fresh deployments arriving on-chain ---------------------
  // The engine sees only addresses; bytecode is pulled through the BEM, the
  // same eth_getCode path a production integration would use.
  std::vector<const synth::LabeledContract*> fresh;
  for (const synth::LabeledContract& sample : history.samples) {
    if (sample.month.index > 9) fresh.push_back(&sample);
  }

  serve::EngineConfig engine_config;
  engine_config.workers = 4;
  engine_config.max_batch = 16;
  serve::ScoringEngine engine(*history.explorer, *detector, engine_config);

  std::printf("scanning fresh deployments (2024-08..2024-10) on %zu workers, "
              "%d producers:\n",
              engine_config.workers, 2);
  std::vector<std::vector<serve::ScoreResult>> halves(2);
  common::Timer scan_timer;
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        // Each producer scans half the stream, as two wallet frontends would.
        std::vector<evm::Address> addresses;
        for (std::size_t i = p; i < fresh.size(); i += 2) {
          addresses.push_back(fresh[i]->address);
        }
        halves[p] = engine.score_all(addresses);
      });
    }
    for (std::thread& producer : producers) producer.join();
  }
  const double scan_ms = scan_timer.milliseconds();

  std::size_t scanned = 0, flagged = 0, missed = 0, false_alarms = 0;
  for (int p = 0; p < 2; ++p) {
    for (std::size_t r = 0; r < halves[p].size(); ++r) {
      const serve::ScoreResult& result = halves[p][r];
      const synth::LabeledContract& sample =
          *fresh[static_cast<std::size_t>(p) + 2 * r];
      ++scanned;
      if (result.flagged && sample.phishing) ++flagged;
      if (!result.flagged && sample.phishing) ++missed;
      if (result.flagged && !sample.phishing) ++false_alarms;
      if (result.flagged) {
        std::printf("  !! %s  P(phishing)=%.2f  (%.0f us%s)%s\n",
                    result.address.to_hex().c_str(), result.probability,
                    result.latency_us, result.cache_hit ? ", cached" : "",
                    sample.phishing ? "" : "  <- FALSE ALARM");
      }
    }
  }

  std::printf("\nscanned %zu new contracts in %.1f ms\n", scanned, scan_ms);
  std::printf("  phishing caught:  %zu\n", flagged);
  std::printf("  phishing missed:  %zu\n", missed);
  std::printf("  false alarms:     %zu\n", false_alarms);
  std::printf("\nservice metrics (wallet signing budget: seconds):\n");
  std::ostringstream metrics;
  engine.dump_metrics(metrics);
  std::printf("%s", metrics.str().c_str());

  // Quiesce the engine before exporting telemetry: worker threads must be
  // joined so the trace rings and counters are final.
  engine.shutdown();
  if (metrics_path != nullptr) {
    std::ofstream out(metrics_path);
    engine.dump_prometheus(out);
    obs::MetricsRegistry::global().write_prometheus(out);
    std::printf("\nmetrics exposition written to %s\n", metrics_path);
  }
  if (trace_path != nullptr) {
    obs::Tracer::global().write_to_file(trace_path);
    std::printf("trace written to %s (open in chrome://tracing)\n",
                trace_path);
  }
  std::filesystem::remove(artifact_path);
  return 0;
}
