// Quickstart: the PhishingHook pipeline in ~80 lines.
//
//   1. disassemble a contract (the paper's §III example),
//   2. build a small labeled corpus on the simulated chain,
//   3. train the best Table II model (Random Forest on opcode histograms),
//   4. classify fresh contracts.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "synth/dataset_builder.hpp"

int main() {
  using namespace phishinghook;

  // --- 1. disassembly (BDM) -------------------------------------------------
  const evm::Bytecode snippet = evm::Bytecode::from_hex("0x6080604052");
  const evm::Disassembly listing = evm::Disassembler().disassemble(snippet);
  std::printf("disassembling %s (the paper's example):\n",
              snippet.to_hex().c_str());
  for (const evm::Instruction& ins : listing.instructions) {
    std::printf("  pc=%02zu  %-8s gas=%u\n", ins.pc,
                ins.to_string().c_str(), ins.gas);
  }

  // --- 2. a labeled corpus ---------------------------------------------------
  synth::DatasetConfig config;
  config.target_size = 300;
  config.seed = 7;
  const synth::BuiltDataset dataset = synth::DatasetBuilder(config).build();
  std::printf("\ncorpus: %zu contracts (%zu phishing / %zu benign), "
              "deduplicated from %zu raw phishing deployments\n",
              dataset.samples.size(), dataset.phishing_count(),
              dataset.benign_count(), dataset.raw_phishing);

  // --- 3. train the Table II champion ---------------------------------------
  const auto specs = core::all_models(common::scale_params(common::Scale::kSmoke));
  auto model = core::find_model(specs, "Random Forest").make(/*seed=*/1);

  const auto codes = core::codes_of(dataset.samples);
  const auto labels = core::labels_of(dataset.samples);
  const std::size_t train_count = dataset.samples.size() * 8 / 10;
  std::vector<const evm::Bytecode*> train_codes(codes.begin(),
                                                codes.begin() + static_cast<std::ptrdiff_t>(train_count));
  std::vector<int> train_labels(labels.begin(),
                                labels.begin() + static_cast<std::ptrdiff_t>(train_count));
  model->fit(train_codes, train_labels);

  // --- 4. classify the held-out tail -----------------------------------------
  std::vector<const evm::Bytecode*> test_codes(codes.begin() + static_cast<std::ptrdiff_t>(train_count),
                                               codes.end());
  std::vector<int> test_labels(labels.begin() + static_cast<std::ptrdiff_t>(train_count),
                               labels.end());
  const auto probs = model->predict_proba(test_codes);
  const auto metrics = ml::compute_metrics(
      test_labels, ml::threshold_predictions(probs));
  std::printf("\nheld-out performance: accuracy %.1f%%, F1 %.1f%%\n",
              100.0 * metrics.accuracy, 100.0 * metrics.f1);

  std::printf("\nsample verdicts:\n");
  for (std::size_t i = 0; i < 5 && i < test_codes.size(); ++i) {
    std::printf("  %s  P(phishing)=%.2f  [truth: %s]\n",
                dataset.samples[train_count + i].address.to_hex().c_str(),
                probs[i], test_labels[i] != 0 ? "Phish/Hack" : "benign");
  }
  return 0;
}
