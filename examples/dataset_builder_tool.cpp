// Dataset builder tool: reproduces the paper's released-dataset artifact.
//
// Walks the full data-gathering pipeline explicitly — crawl the contract
// registry (BigQuery stand-in), scrape Phish/Hack flags (etherscan
// stand-in), extract bytecode over eth_getCode (BEM), deduplicate bit-by-bit
// and balance — then exports the dataset as CSV plus one disassembly
// listing per class, the artifacts the paper publishes on Zenodo.
//
// Build & run:  ./build/examples/dataset_builder_tool [output_dir]
#include <cstdio>
#include <filesystem>

#include "common/csv.hpp"
#include "core/bdm.hpp"
#include "core/bem.hpp"
#include "synth/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace phishinghook;
  const std::filesystem::path out_dir =
      argc > 1 ? std::filesystem::path(argv[1]) : "phishinghook_dataset";
  std::filesystem::create_directories(out_dir);

  // --- pipeline, step by step -----------------------------------------------
  synth::DatasetConfig config;
  config.target_size = 400;
  config.seed = 1337;
  const synth::DatasetBuilder builder(config);
  std::printf("building the corpus (crawl -> scrape -> BEM -> dedup -> "
              "balance)...\n");
  const synth::BuiltDataset dataset = builder.build();

  // Demonstrate the crawl/scrape surface the builder used internally.
  const auto all_addresses =
      dataset.explorer->crawl(chain::Month{0}, chain::Month{12});
  std::printf("  crawl window 2023-10..2024-10: %zu deployed contracts\n",
              all_addresses.size());
  std::printf("  flagged Phish/Hack by the label service: %zu\n",
              dataset.explorer->flagged_count());
  std::printf("  raw phishing %zu -> unique %zu (bit-exact dedup)\n",
              dataset.raw_phishing, dataset.unique_phishing);
  std::printf("  balanced dataset: %zu samples\n\n", dataset.samples.size());

  // --- export ------------------------------------------------------------------
  {
    common::CsvWriter writer(out_dir / "contracts.csv");
    writer.write_row({"address", "month", "label", "family", "bytecode"});
    for (const synth::LabeledContract& sample : dataset.samples) {
      writer.write_row({sample.address.to_hex(), sample.month.label(),
                        sample.phishing ? "Phish/Hack" : "benign",
                        std::string(synth::family_name(sample.family)),
                        sample.code.to_hex()});
    }
  }
  std::printf("wrote %s (%zu rows)\n", (out_dir / "contracts.csv").c_str(),
              dataset.samples.size());

  // One disassembly listing per class, as BDM reference output.
  const core::BytecodeDisassemblerModule bdm;
  bool wrote_phishing = false, wrote_benign = false;
  for (const synth::LabeledContract& sample : dataset.samples) {
    if (sample.phishing && !wrote_phishing) {
      bdm.disassemble_to_csv(sample.code, out_dir / "example_phishing.csv");
      wrote_phishing = true;
    }
    if (!sample.phishing && !wrote_benign) {
      bdm.disassemble_to_csv(sample.code, out_dir / "example_benign.csv");
      wrote_benign = true;
    }
    if (wrote_phishing && wrote_benign) break;
  }
  std::printf("wrote %s and %s (BDM listings)\n",
              (out_dir / "example_phishing.csv").c_str(),
              (out_dir / "example_benign.csv").c_str());

  // Monthly volume table (Fig. 2's underlying series).
  {
    common::CsvWriter writer(out_dir / "monthly_phishing.csv");
    writer.write_row({"month", "raw_phishing_deployments"});
    for (int m = 0; m < chain::Month::kCount; ++m) {
      writer.write_row({chain::Month{m}.label(),
                        std::to_string(dataset.phishing_per_month[static_cast<std::size_t>(m)])});
    }
  }
  std::printf("wrote %s\n", (out_dir / "monthly_phishing.csv").c_str());
  std::printf("\ndataset export complete: %s\n", out_dir.c_str());
  return 0;
}
