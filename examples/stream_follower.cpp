// Stream follower: live-tail a chain being mined and score every new
// deployment at chain speed.
//
// Where contract_scanner replays a *finished* corpus through the engine,
// this example runs the streaming deployment shape end to end: a miner
// keeps producing blocks with fresh (and heavily duplicated) contracts, a
// block follower tails the head and dedups by code hash, an open-loop
// load generator submits score requests on a Poisson schedule regardless
// of how fast the engine answers, and the coordinator drains the whole
// pipeline gracefully at the end — printing ingest lag, dedup/cache hit
// rates, sustained rows/s, and the accounting identity.
//
// Build & run:  ./build/examples/stream_follower
//   --seconds <s>      run duration (default 5)
//   --rate <r>         arrival rate, requests/s (default 1000)
//   --burst            use the mempool-burst scenario instead of steady
//   --blocks-per-s <b> chain production rate (default 50)
//   --chaos <rate>     fault-inject the follower's code fetches:
//                      eth_getCode throws at <rate> on a seeded schedule
//   --metrics <path>   write the stream + engine Prometheus expositions
//   --metrics-port <p> serve /metrics, /vars and /healthz on
//                      127.0.0.1:<p> while the pipeline runs (0 = pick an
//                      ephemeral port, printed at startup). Scrapes show
//                      the stream + engine registries with the windowed
//                      SLO gauges (stream_window_*, stream_error_burn_rate,
//                      stream_shed_pressure) refreshed per scrape;
//                      /healthz reports live drain/queue state.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include "chain/fault_injection.hpp"
#include "core/model_registry.hpp"
#include "ml/random_forest.hpp"
#include "obs/scrape_server.hpp"
#include "obs/trace.hpp"
#include "serve/scoring_engine.hpp"
#include "stream/coordinator.hpp"
#include "synth/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace phishinghook;

  double seconds = 5.0;
  double rate = 1000.0;
  bool burst = false;
  double blocks_per_s = 50.0;
  double chaos_rate = 0.0;
  const char* metrics_path = nullptr;
  int metrics_port = -1;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--seconds") == 0 && a + 1 < argc) {
      seconds = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--rate") == 0 && a + 1 < argc) {
      rate = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--burst") == 0) {
      burst = true;
    } else if (std::strcmp(argv[a], "--blocks-per-s") == 0 && a + 1 < argc) {
      blocks_per_s = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--chaos") == 0 && a + 1 < argc) {
      chaos_rate = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--metrics") == 0 && a + 1 < argc) {
      metrics_path = argv[++a];
    } else if (std::strcmp(argv[a], "--metrics-port") == 0 && a + 1 < argc) {
      metrics_port = std::atoi(argv[++a]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[a]);
      return 2;
    }
  }

  // 1. Train the detector on the historical window (the batch side).
  std::printf("== training detector on the historical window\n");
  synth::DatasetConfig dataset_config;
  dataset_config.target_size = 240;
  dataset_config.seed = 97;
  const synth::BuiltDataset built =
      synth::DatasetBuilder(dataset_config).build();
  ml::RandomForestConfig rf;
  rf.n_trees = 12;
  rf.max_depth = 6;
  core::HistogramAdapter detector(
      std::make_unique<ml::RandomForestClassifier>(rf), "stream-follower");
  {
    std::vector<const evm::Bytecode*> codes;
    std::vector<int> labels;
    for (const synth::LabeledContract& sample : built.samples) {
      codes.push_back(&sample.code);
      labels.push_back(sample.phishing ? 1 : 0);
    }
    detector.fit(codes, labels);
  }

  // 2. Stand up the live chain + engine + streaming pipeline.
  stream::LiveChain live;
  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  engine_config.max_queue = 256;
  serve::ScoringEngine engine(live.explorer(), detector, engine_config);

  std::unique_ptr<chain::FaultInjectingExplorer> chaos;
  if (chaos_rate > 0.0) {
    chain::FaultConfig fault_config;
    fault_config.throw_rate = chaos_rate;
    fault_config.seed = 1;
    chaos = std::make_unique<chain::FaultInjectingExplorer>(live.explorer(),
                                                            fault_config);
  }

  stream::StreamConfig config;
  config.arrivals = burst ? stream::LoadGenerator::mempool_burst_scenario()
                          : stream::LoadGenerator::steady_scenario();
  config.arrivals.rate_per_s = rate;
  config.blocks_per_s = blocks_per_s;
  config.max_blocks =
      static_cast<std::uint64_t>(std::ceil(blocks_per_s * seconds));
  config.max_requests = static_cast<std::uint64_t>(
      (config.arrivals.rate_per_s + config.arrivals.burst_rate_per_s) *
      seconds * 4.0);

  std::printf("== streaming for %.1fs (%s arrivals at %.0f/s, %.0f blocks/s%s)\n",
              seconds, burst ? "mempool-burst" : "steady", rate, blocks_per_s,
              chaos ? ", chaos on the follower" : "");
  stream::StreamCoordinator coordinator(live, engine, config, chaos.get());

  // Scrape endpoint over both registries. Hooks re-evaluate the SLO window
  // and sync cache/tracer state on every pull, and /healthz exposes the
  // coordinator's live drain/queue state.
  obs::ScrapeServer scrape;
  if (metrics_port >= 0) {
    scrape.add_registry(coordinator.registry());
    scrape.add_registry(engine.prometheus_registry());
    scrape.add_pre_scrape_hook([&coordinator] { coordinator.evaluate_slo(); });
    scrape.add_pre_scrape_hook([&engine] { engine.export_pull_metrics(); });
    scrape.add_pre_scrape_hook([&coordinator] {
      obs::Tracer::global().export_metrics(coordinator.registry());
    });
    scrape.set_health([&coordinator] { return coordinator.health_json(); });
    scrape.start(static_cast<std::uint16_t>(metrics_port));
    std::printf("== metrics: http://127.0.0.1:%u/metrics "
                "(also /vars, /healthz)\n",
                scrape.port());
    // Scrapers watching our stdout (the ci.sh smoke) need the URL the
    // moment the server is up, not when the stdio buffer happens to drain.
    std::fflush(stdout);
  }

  coordinator.start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (!coordinator.finished() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  coordinator.drain();

  // 3. Report.
  const stream::StreamReport report = coordinator.report();
  std::printf("== run summary (%.2fs)\n", report.elapsed_s);
  std::printf("  chain:    %llu blocks, %llu deployments (%llu phishing, "
              "%llu clones)\n",
              (unsigned long long)report.miner.blocks_mined,
              (unsigned long long)report.miner.deployments,
              (unsigned long long)report.miner.phishing_deployments,
              (unsigned long long)report.miner.clone_deployments);
  std::printf("  follower: %llu seen, %llu forwarded, dedup hit rate %.2f, "
              "lag %llu (max %llu) blocks, %llu code faults\n",
              (unsigned long long)report.follower.deployments_seen,
              (unsigned long long)report.follower.forwarded,
              report.follower.dedup_hit_rate(),
              (unsigned long long)report.ingest_lag_blocks,
              (unsigned long long)report.max_ingest_lag_blocks,
              (unsigned long long)report.follower.code_faults);
  std::printf("  traffic:  %llu submitted (%llu fresh, %llu requery, "
              "%llu burst)\n",
              (unsigned long long)report.submitted,
              (unsigned long long)report.fresh_submits,
              (unsigned long long)report.requery_submits,
              (unsigned long long)report.burst_arrivals);
  std::printf("  results:  %llu completed, %llu failed, %llu shed "
              "(%llu cache hits) -> %.0f rows/s sustained\n",
              (unsigned long long)report.completed,
              (unsigned long long)report.failed,
              (unsigned long long)report.shed,
              (unsigned long long)report.cache_hit_results,
              report.sustained_rows_per_s);
  std::printf("  accounting: submitted == completed + failed + shed: %s\n",
              report.accounting_ok() ? "OK" : "BROKEN");
  std::printf("  window:   %.0f req/s, p99 %.0f us, burn %.2f, "
              "shed pressure %.2f (last %.0fs; may have decayed post-drain)\n",
              report.window.rate_per_sec, report.window.p99_us,
              report.error_burn_rate, report.shed_pressure,
              report.window.window_seconds);

  if (metrics_path != nullptr) {
    std::ofstream out(metrics_path);
    coordinator.registry().write_prometheus(out);
    engine.dump_prometheus(out);
    std::printf("== metrics written to %s\n", metrics_path);
  }
  return report.accounting_ok() ? 0 : 1;
}
