// score_server: the scoring pipeline behind a JSON-RPC socket front door.
//
// Stands up the full serving stack as a process a wallet backend could
// actually point at: a synthetic chain is pre-mined for contract supply, a
// two-stage model cascade (logreg stage 0, random-forest escalation inside
// the uncertainty band) is fitted on a synthetic labeled set, a
// ScoringEngine serves it, and serve::RpcFrontend exposes phook_score /
// phook_scoreBatch / phook_health over HTTP POST on loopback. A ScrapeServer on a second port
// serves /metrics with the engine's serve_* series and the front door's
// net_* series side by side.
//
//   ./score_server                       # ephemeral ports, 30s, then exit
//   ./score_server --port 9545 --seconds 120
//
// Prints, before serving: the RPC URL, the metrics URL, and a sample
// contract address guaranteed to exist on the synthetic chain — paste it
// into the curl from the README (the ci.sh smoke drives exactly that).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/model_registry.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/random_forest.hpp"
#include "net/scrape_server.hpp"
#include "serve/cascade.hpp"
#include "serve/rpc_frontend.hpp"
#include "serve/scoring_engine.hpp"
#include "stream/live_chain.hpp"
#include "synth/dataset_builder.hpp"

namespace {

using namespace phishinghook;

/// Two-stage cascade: a cheap logistic-regression stage 0 scores every
/// request; only probabilities inside `band` escalate to the random
/// forest. phook_health reports the per-stage row counts this produces.
std::unique_ptr<serve::CascadeScorer> fit_cascade(serve::CascadeConfig band) {
  synth::DatasetConfig dataset_config;
  dataset_config.target_size = 160;
  dataset_config.seed = 97;
  const synth::BuiltDataset built =
      synth::DatasetBuilder(dataset_config).build();
  std::vector<const evm::Bytecode*> codes;
  std::vector<int> labels;
  for (const synth::LabeledContract& sample : built.samples) {
    codes.push_back(&sample.code);
    labels.push_back(sample.phishing ? 1 : 0);
  }

  auto stage0 = std::make_unique<core::HistogramAdapter>(
      std::make_unique<ml::LogisticRegressionClassifier>(), "logreg");
  stage0->fit(codes, labels);
  ml::RandomForestConfig rf;
  rf.n_trees = 8;
  rf.max_depth = 6;
  auto heavy = std::make_unique<core::HistogramAdapter>(
      std::make_unique<ml::RandomForestClassifier>(rf), "random-forest");
  heavy->fit(codes, labels);

  std::vector<std::unique_ptr<ml::Scorer>> stages;
  stages.push_back(std::move(stage0));
  stages.push_back(std::move(heavy));
  return std::make_unique<serve::CascadeScorer>(std::move(stages), band);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;          // 0 = kernel-assigned
  int metrics_port = 0;  // -1 disables the scrape endpoint
  double seconds = 30.0;
  serve::CascadeConfig band;  // [0.35, 0.65]; --band-lo 1 --band-hi 0 disables
  for (int i = 1; i < argc; ++i) {
    const auto next_int = [&](int fallback) {
      return i + 1 < argc ? std::atoi(argv[++i]) : fallback;
    };
    const auto next_double = [&](double fallback) {
      return i + 1 < argc ? std::atof(argv[++i]) : fallback;
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = next_int(port);
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      metrics_port = next_int(metrics_port);
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = next_double(seconds);
    } else if (std::strcmp(argv[i], "--band-lo") == 0) {
      band.lo = next_double(band.lo);
    } else if (std::strcmp(argv[i], "--band-hi") == 0) {
      band.hi = next_double(band.hi);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--metrics-port N|-1] "
                   "[--seconds S] [--band-lo P] [--band-hi P]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== fitting cascade + pre-mining chain\n");
  const std::unique_ptr<serve::CascadeScorer> detector = fit_cascade(band);
  stream::LiveChain live;
  for (int i = 0; i < 30; ++i) live.mine_next_block();
  const chain::ChainTail tail = live.explorer().crawl_after(0);
  if (tail.records.empty()) {
    std::fprintf(stderr, "pre-mine produced no contracts\n");
    return 1;
  }

  serve::EngineConfig engine_config;
  engine_config.workers = 2;
  engine_config.max_queue = 256;
  serve::ScoringEngine engine(live.explorer(), *detector, engine_config);

  net::RpcConfig rpc_config;
  rpc_config.dispatchers = 2;
  serve::RpcFrontend frontend(engine, rpc_config);
  frontend.start(static_cast<std::uint16_t>(port));

  net::ScrapeServer scrape;
  if (metrics_port >= 0) {
    scrape.add_registry(engine.prometheus_registry());
    scrape.add_registry(frontend.server().metrics_registry());
    scrape.add_pre_scrape_hook([&engine] { engine.export_pull_metrics(); });
    scrape.add_pre_scrape_hook(
        [&frontend] { frontend.server().export_metrics(); });
    scrape.set_health([&engine, &frontend] {
      std::ostringstream body;
      body << "{\"status\":\"ok\",\"requests_received\":"
           << frontend.server().requests_received()
           << ",\"requests_completed\":"
           << engine.metrics().requests_completed.value() << "}";
      return body.str();
    });
    scrape.start(static_cast<std::uint16_t>(metrics_port));
  }

  // The ci.sh smoke greps these three lines, then curls; they must hit the
  // pipe the moment the sockets are live.
  std::printf("== rpc: http://127.0.0.1:%u/\n", frontend.port());
  if (metrics_port >= 0) {
    std::printf("== metrics: http://127.0.0.1:%u/metrics (also /vars, "
                "/healthz)\n",
                scrape.port());
  }
  std::printf("== sample_address: %s\n", tail.records.front().address.to_hex().c_str());
  std::printf("== serving for %.0fs; score with\n"
              "   curl -s -X POST http://127.0.0.1:%u/ -d "
              "'{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"phook_score\","
              "\"params\":[\"%s\"]}'\n",
              seconds, frontend.port(),
              tail.records.front().address.to_hex().c_str());
  std::fflush(stdout);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  frontend.stop();
  if (metrics_port >= 0) scrape.stop();
  std::printf("== served %llu rpc requests, engine completed %llu\n",
              static_cast<unsigned long long>(
                  frontend.server().requests_received()),
              static_cast<unsigned long long>(
                  engine.metrics().requests_completed.value()));
  return 0;
}
